#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <numeric>
#include <set>
#include <utility>

#include "common/rng.h"
#include "lattice/lattice.h"
#include "schedule/backend.h"
#include "schedule/matching.h"
#include "schedule/partial.h"
#include "schedule/pipesort.h"
#include "schedule/schedule_tree.h"

namespace sncube {
namespace {

// Exhaustive min-cost assignment for cross-checking (rows <= cols <= 8).
double BruteForceMinCost(const std::vector<std::vector<double>>& cost) {
  const int n = static_cast<int>(cost.size());
  const int m = static_cast<int>(cost[0].size());
  std::vector<int> cols(m);
  std::iota(cols.begin(), cols.end(), 0);
  double best = std::numeric_limits<double>::infinity();
  do {
    double total = 0;
    for (int i = 0; i < n; ++i) total += cost[i][cols[i]];
    best = std::min(best, total);
  } while (std::next_permutation(cols.begin(), cols.end()));
  return best;
}

double AssignmentCost(const std::vector<std::vector<double>>& cost,
                      const std::vector<int>& assignment) {
  double total = 0;
  for (std::size_t i = 0; i < assignment.size(); ++i) {
    total += cost[i][assignment[i]];
  }
  return total;
}

TEST(Hungarian, TinyKnownCase) {
  const std::vector<std::vector<double>> cost{{4, 1, 3}, {2, 0, 5}, {3, 2, 2}};
  const auto a = HungarianMinCost(cost);
  EXPECT_DOUBLE_EQ(AssignmentCost(cost, a), 5.0);  // 1 + 2 + 2
}

TEST(Hungarian, RectangularUsesBestColumns) {
  const std::vector<std::vector<double>> cost{{10, 1, 10, 10},
                                              {10, 10, 2, 10}};
  const auto a = HungarianMinCost(cost);
  EXPECT_EQ(a[0], 1);
  EXPECT_EQ(a[1], 2);
}

TEST(Hungarian, ColumnsAreDistinct) {
  const std::vector<std::vector<double>> cost{{1, 1}, {1, 1}};
  const auto a = HungarianMinCost(cost);
  EXPECT_NE(a[0], a[1]);
}

TEST(Hungarian, RandomizedMatchesBruteForce) {
  Rng rng(321);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 2 + static_cast<int>(rng.Below(4));
    const int m = n + static_cast<int>(rng.Below(3));
    std::vector<std::vector<double>> cost(n, std::vector<double>(m));
    for (auto& row : cost) {
      for (auto& c : row) c = static_cast<double>(rng.Below(20));
    }
    const auto a = HungarianMinCost(cost);
    std::set<int> used(a.begin(), a.end());
    EXPECT_EQ(used.size(), a.size());  // distinct columns
    EXPECT_DOUBLE_EQ(AssignmentCost(cost, a), BruteForceMinCost(cost))
        << "trial " << trial;
  }
}

TEST(MaxWeightMatching, IgnoresNonPositiveEdges) {
  const std::vector<std::vector<double>> w{{-5, 0}, {0, -1}};
  const auto m = MaxWeightBipartiteMatching(w);
  EXPECT_EQ(m[0], -1);
  EXPECT_EQ(m[1], -1);
}

TEST(MaxWeightMatching, PrefersHeavierCombination) {
  // Row 0 would take column 0 greedily (9), but the optimum gives column 0
  // to row 1 (8) and column 1 to row 0 (7): 15 > 9 + nothing.
  const std::vector<std::vector<double>> w{{9, 7}, {8, 0}};
  const auto m = MaxWeightBipartiteMatching(w);
  EXPECT_EQ(m[0], 1);
  EXPECT_EQ(m[1], 0);
}

TEST(MaxWeightMatching, LeavesRowUnmatchedWhenColumnsScarce) {
  const std::vector<std::vector<double>> w{{5}, {3}};
  const auto m = MaxWeightBipartiteMatching(w);
  EXPECT_EQ(m[0], 0);
  EXPECT_EQ(m[1], -1);
}

// ---------------------------------------------------------------------------

Schema FourDims() { return Schema({256, 128, 64, 32}); }

TEST(ScheduleTree, BuildValidateRoundTrip) {
  ScheduleTree tree;
  const ViewId abcd = ViewId::Full(4);
  tree.AddRoot(abcd, abcd.DimList(), 1000.0);
  const int abc = tree.AddChild(0, ViewId::FromDims({0, 1, 2}),
                                EdgeKind::kScan, 500.0);
  tree.AddChild(0, ViewId::FromDims({0, 2, 3}), EdgeKind::kSort, 400.0);
  tree.AddChild(abc, ViewId::FromDims({0, 1}), EdgeKind::kScan, 100.0);
  tree.ResolveOrders();
  tree.Validate();

  EXPECT_EQ(tree.size(), 4);
  EXPECT_EQ(tree.ScanChild(0), abc);
  EXPECT_TRUE(tree.node(abc).order_fixed);
  EXPECT_EQ(tree.node(abc).order, (std::vector<int>{0, 1, 2}));

  const ByteBuffer bytes = tree.Serialize();
  const ScheduleTree back = ScheduleTree::Deserialize(bytes);
  back.Validate();
  ASSERT_EQ(back.size(), tree.size());
  for (int i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(back.node(i).view, tree.node(i).view);
    EXPECT_EQ(back.node(i).parent, tree.node(i).parent);
    EXPECT_EQ(back.node(i).edge, tree.node(i).edge);
    EXPECT_EQ(back.node(i).order, tree.node(i).order);
    EXPECT_EQ(back.node(i).selected, tree.node(i).selected);
    EXPECT_DOUBLE_EQ(back.node(i).est_rows, tree.node(i).est_rows);
  }
}

TEST(ScheduleTree, RejectsSecondScanChild) {
  ScheduleTree tree;
  tree.AddRoot(ViewId::Full(3), ViewId::Full(3).DimList(), 10.0);
  tree.AddChild(0, ViewId::FromDims({0, 1}), EdgeKind::kScan, 5.0);
  EXPECT_THROW(tree.AddChild(0, ViewId::FromDims({0}), EdgeKind::kScan, 1.0),
               SncubeError);
}

TEST(ScheduleTree, RejectsNonSubsetChild) {
  ScheduleTree tree;
  tree.AddRoot(ViewId::FromDims({0, 1}), std::vector<int>{0, 1}, 10.0);
  EXPECT_THROW(
      tree.AddChild(0, ViewId::FromDims({2}), EdgeKind::kSort, 1.0),
      SncubeError);
}

TEST(ScheduleTree, RejectsNonPrefixScanFromFixedParent) {
  ScheduleTree tree;
  tree.AddRoot(ViewId::Full(3), std::vector<int>{0, 1, 2}, 10.0);
  // {0,2} is not a prefix of order (0,1,2).
  EXPECT_THROW(
      tree.AddChild(0, ViewId::FromDims({0, 2}), EdgeKind::kScan, 1.0),
      SncubeError);
}

TEST(ScheduleTree, ResolveOrdersPropagatesScanChains) {
  ScheduleTree tree;
  tree.AddRoot(ViewId::Full(4), std::vector<int>{0, 1, 2, 3}, 100.0);
  // Sort child BCD (free order), whose scan child is BD: BCD's order must
  // begin with BD's dims.
  const int bcd =
      tree.AddChild(0, ViewId::FromDims({1, 2, 3}), EdgeKind::kSort, 50.0);
  tree.AddChild(bcd, ViewId::FromDims({1, 3}), EdgeKind::kScan, 20.0);
  tree.ResolveOrders();
  tree.Validate();
  EXPECT_EQ(tree.node(bcd).order, (std::vector<int>{1, 3, 2}));
}

TEST(ScheduleTree, ToDotRendersEdgesAndAux) {
  const Schema schema = FourDims();
  ScheduleTree tree;
  tree.AddRoot(ViewId::Full(4), ViewId::Full(4).DimList(), 100.0);
  tree.AddChild(0, ViewId::FromDims({0, 1, 2}), EdgeKind::kScan, 50.0);
  tree.AddChild(0, ViewId::FromDims({0, 3}), EdgeKind::kSort, 20.0, false);
  tree.ResolveOrders();
  const std::string dot = tree.ToDot(schema);
  EXPECT_NE(dot.find("digraph schedule"), std::string::npos);
  EXPECT_NE(dot.find("style=bold, label=\"scan\""), std::string::npos);
  EXPECT_NE(dot.find("label=\"sort\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // aux node
  EXPECT_NE(dot.find("ABCD"), std::string::npos);
}

TEST(ScheduleTree, EstimatedCostCountsScanVsSort) {
  ScheduleTree tree;
  tree.AddRoot(ViewId::Full(2), std::vector<int>{0, 1}, 16.0);
  tree.AddChild(0, ViewId::FromDims({0}), EdgeKind::kScan, 4.0);
  tree.AddChild(0, ViewId::FromDims({1}), EdgeKind::kSort, 4.0);
  tree.ResolveOrders();
  // scan = 16, sort = 16·log2(16) = 64.
  EXPECT_DOUBLE_EQ(tree.EstimatedCost(), 16.0 + 64.0);
}

// ---------------------------------------------------------------------------

TEST(Pipesort, FullAPartitionMatchesFigure1b) {
  const Schema schema = FourDims();
  const auto parts = PartitionViews(AllViews(4), 4);
  const ViewId root = PartitionRoot(parts[0]);  // ABCD
  AnalyticEstimator est(schema, 100000);

  const ScheduleTree tree =
      BuildPipesortTree(parts[0], root, root.DimList(), est);
  tree.Validate();

  // All 8 views of the A-partition appear exactly once.
  std::set<std::uint32_t> seen;
  for (int i = 0; i < tree.size(); ++i) {
    EXPECT_TRUE(seen.insert(tree.node(i).view.mask()).second);
    EXPECT_TRUE(tree.node(i).selected);
  }
  EXPECT_EQ(seen.size(), 8u);

  // The root's scan child must be its canonical prefix ABC (order is fixed
  // by the global sort).
  const int sc = tree.ScanChild(0);
  ASSERT_GE(sc, 0);
  EXPECT_EQ(tree.node(sc).view, ViewId::FromDims({0, 1, 2}));

  // Pipesort must beat the all-sort tree.
  double all_sort = 0;
  for (int i = 1; i < tree.size(); ++i) {
    all_sort += SortCost(tree.node(tree.node(i).parent).est_rows);
  }
  EXPECT_LT(tree.EstimatedCost(), all_sort);
}

TEST(Pipesort, EveryLevelFullyScanMatchedWhenPossible) {
  // In the A-partition of a 4-cube, levels 3→2 and 2→1 have equal node
  // counts, so a perfect scan matching exists for the middle levels.
  const Schema schema = FourDims();
  const auto parts = PartitionViews(AllViews(4), 4);
  AnalyticEstimator est(schema, 50000);
  const ViewId root = PartitionRoot(parts[0]);
  const ScheduleTree tree =
      BuildPipesortTree(parts[0], root, root.DimList(), est);

  int scan_edges = 0;
  for (int i = 1; i < tree.size(); ++i) {
    scan_edges += (tree.node(i).edge == EdgeKind::kScan) ? 1 : 0;
  }
  // 3 three-dim views each scan one two-dim view, plus root→ABC and one
  // scan into A: at least 5 of 7 edges are scans.
  EXPECT_GE(scan_edges, 5);
}

TEST(Pipesort, LastPartitionIsRootPlusAll) {
  const Schema schema = FourDims();
  const auto parts = PartitionViews(AllViews(4), 4);
  AnalyticEstimator est(schema, 1000);
  const ViewId root = PartitionRoot(parts[3]);  // D
  const ScheduleTree tree =
      BuildPipesortTree(parts[3], root, root.DimList(), est);
  tree.Validate();
  ASSERT_EQ(tree.size(), 2);
  EXPECT_EQ(tree.node(1).view, ViewId::Empty());
  EXPECT_EQ(tree.node(1).edge, EdgeKind::kScan);  // prefix of anything
}

TEST(Pipesort, AllPartitionsCoverEveryViewOnce) {
  for (int d : {3, 4, 5, 6, 8}) {
    std::vector<std::uint32_t> cards;
    for (int i = 0; i < d; ++i) cards.push_back(1u << (d - i));
    const Schema schema(cards);
    AnalyticEstimator est(schema, 200000);
    const auto parts = PartitionViews(AllViews(d), d);

    std::set<std::uint32_t> seen;
    for (const auto& part : parts) {
      if (part.empty()) continue;
      const ViewId root = PartitionRoot(part);
      const ScheduleTree tree =
          BuildPipesortTree(part, root, root.DimList(), est);
      tree.Validate();
      for (int i = 0; i < tree.size(); ++i) {
        EXPECT_TRUE(seen.insert(tree.node(i).view.mask()).second)
            << "d=" << d;
      }
    }
    EXPECT_EQ(seen.size(), 1u << d) << "d=" << d;
  }
}

TEST(Pipesort, RejectsLevelGaps) {
  const Schema schema = FourDims();
  AnalyticEstimator est(schema, 1000);
  const ViewId root = ViewId::Full(4);
  // AB (level 2) with no level-3 parent present.
  const std::vector<ViewId> gapped{root, ViewId::FromDims({0, 1})};
  EXPECT_THROW(BuildPipesortTree(gapped, root, root.DimList(), est),
               SncubeError);
}

// ---------------------------------------------------------------------------

TEST(Partial, PrunedKeepsSelectedAndPathIntermediates) {
  const Schema schema = FourDims();
  AnalyticEstimator est(schema, 100000);
  const ViewId root = ViewId::Full(4);
  // Figure 1c flavour: select ABCD, AB, AC, A within the A-partition.
  const std::vector<ViewId> selected{root, ViewId::FromDims({0, 1}),
                                     ViewId::FromDims({0, 2}),
                                     ViewId::FromDims({0})};
  const ScheduleTree tree = BuildPartialTree(
      selected, root, root.DimList(), est, PartialStrategy::kPrunedPipesort);
  tree.Validate();

  for (ViewId v : selected) {
    const int i = tree.Find(v);
    ASSERT_GE(i, 0) << "selected view missing";
    EXPECT_TRUE(tree.node(i).selected);
  }
  // Intermediates (if any) are marked auxiliary.
  for (int i = 0; i < tree.size(); ++i) {
    const bool is_selected =
        std::find(selected.begin(), selected.end(), tree.node(i).view) !=
        selected.end();
    EXPECT_EQ(tree.node(i).selected, is_selected);
  }
}

TEST(Partial, GreedyBuildsValidTreeWithoutIntermediates) {
  const Schema schema = FourDims();
  AnalyticEstimator est(schema, 100000);
  const ViewId root = ViewId::Full(4);
  const std::vector<ViewId> selected{root, ViewId::FromDims({0, 1}),
                                     ViewId::FromDims({0, 3}),
                                     ViewId::FromDims({0})};
  const ScheduleTree tree = BuildPartialTree(
      selected, root, root.DimList(), est, PartialStrategy::kGreedyLattice);
  tree.Validate();
  EXPECT_EQ(tree.size(), 4);  // no extra nodes
  for (int i = 0; i < tree.size(); ++i) EXPECT_TRUE(tree.node(i).selected);
}

TEST(Partial, GreedyScanEdgesMaySkipLevels) {
  const Schema schema = FourDims();
  AnalyticEstimator est(schema, 100000);
  const ViewId root = ViewId::Full(4);
  // Only ABCD and A: greedy should hang A off the root directly — and since
  // A is a prefix of the root's order, by scan.
  const std::vector<ViewId> selected{root, ViewId::FromDims({0})};
  const ScheduleTree tree = BuildPartialTree(
      selected, root, root.DimList(), est, PartialStrategy::kGreedyLattice);
  tree.Validate();
  ASSERT_EQ(tree.size(), 2);
  EXPECT_EQ(tree.node(1).edge, EdgeKind::kScan);
}

TEST(Partial, BestPicksCheaper) {
  const Schema schema = FourDims();
  AnalyticEstimator est(schema, 100000);
  const ViewId root = ViewId::Full(4);
  const std::vector<ViewId> selected{root, ViewId::FromDims({0, 1}),
                                     ViewId::FromDims({0})};
  const ScheduleTree best =
      BuildBestPartialTree(selected, root, root.DimList(), est);
  const ScheduleTree pruned = BuildPartialTree(
      selected, root, root.DimList(), est, PartialStrategy::kPrunedPipesort);
  const ScheduleTree greedy = BuildPartialTree(
      selected, root, root.DimList(), est, PartialStrategy::kGreedyLattice);
  EXPECT_DOUBLE_EQ(
      best.EstimatedCost(),
      std::min(pruned.EstimatedCost(), greedy.EstimatedCost()));
}

TEST(Partial, SingleEmptyViewPartition) {
  const Schema schema = FourDims();
  AnalyticEstimator est(schema, 1000);
  const std::vector<ViewId> selected{ViewId::Empty()};
  for (auto strategy : {PartialStrategy::kPrunedPipesort,
                        PartialStrategy::kGreedyLattice}) {
    const ScheduleTree tree = BuildPartialTree(selected, ViewId::Empty(), {},
                                               est, strategy);
    tree.Validate();
    EXPECT_EQ(tree.size(), 1);
  }
}

TEST(Partial, FullSelectionEqualsPipesortCost) {
  // Selecting every view of a partition: the pruned strategy degenerates to
  // plain Pipesort.
  const Schema schema = FourDims();
  AnalyticEstimator est(schema, 100000);
  const auto parts = PartitionViews(AllViews(4), 4);
  const ViewId root = PartitionRoot(parts[0]);
  const ScheduleTree full =
      BuildPipesortTree(parts[0], root, root.DimList(), est);
  const ScheduleTree pruned = BuildPartialTree(
      parts[0], root, root.DimList(), est, PartialStrategy::kPrunedPipesort);
  EXPECT_DOUBLE_EQ(full.EstimatedCost(), pruned.EstimatedCost());
  EXPECT_EQ(full.size(), pruned.size());
}

// ---------------------------------------------------------------------------
// Backend selection (schedule/backend.h).

// Default CostParams ratio: cpu_hash_record_s / cpu_sort_record_s.
constexpr double kHashRatio = 6.0;

// Pinned estimator fixture: exact per-view row counts, so the auto
// cost-choice below is checkable arithmetic rather than estimator modeling.
class PinnedEstimator final : public ViewSizeEstimator {
 public:
  explicit PinnedEstimator(std::map<ViewId, double> rows)
      : rows_(std::move(rows)) {}
  double EstimateRows(ViewId v) const override { return rows_.at(v); }

 private:
  std::map<ViewId, double> rows_;
};

TEST(Backend, ParseAndNameRoundTrip) {
  EXPECT_EQ(ParseBackendMode("sort"), BackendMode::kSort);
  EXPECT_EQ(ParseBackendMode("hash"), BackendMode::kHash);
  EXPECT_EQ(ParseBackendMode("auto"), BackendMode::kAuto);
  EXPECT_FALSE(ParseBackendMode("Sort").has_value());
  EXPECT_FALSE(ParseBackendMode("").has_value());
  for (auto m : {BackendMode::kSort, BackendMode::kHash, BackendMode::kAuto}) {
    EXPECT_EQ(ParseBackendMode(BackendModeName(m)), m);
  }
}

TEST(Backend, CostModelCrossover) {
  // High-reduction edge (100000 rows → 100 groups): the linear hash pass
  // plus a tiny group sort beats re-sorting the whole parent. Low-reduction
  // edge (→ 90000 groups): the hash pass is pure overhead.
  EXPECT_LT(HashBackendCost(100000, 100, kHashRatio), SortBackendCost(100000));
  EXPECT_GT(HashBackendCost(100000, 90000, kHashRatio),
            SortBackendCost(100000));
  // Zero reduction is a guaranteed loss: r·n + S(n) > S(n).
  EXPECT_GT(HashBackendCost(5000, 5000, kHashRatio), SortBackendCost(5000));
}

TEST(Backend, AutoPicksPerEdgeFromPinnedEstimates) {
  // Hand-checkable with the pinned rows (S(n) = n·log2 n):
  //   ab: 6·1e5 + 100·log2(100)   ≈ 6.0e5 < S(1e5) ≈ 1.66e6  → hash
  //   ac: 6·1e5 + 9e4·log2(9e4)   ≈ 2.08e6 > S(1e5)          → sort
  const ViewId abc = ViewId::Full(3);
  const ViewId ab = ViewId::FromDims({0, 1});
  const ViewId ac = ViewId::FromDims({0, 2});
  const ViewId a = ViewId::FromDims({0});
  const PinnedEstimator est(
      {{abc, 100000.0}, {ab, 100.0}, {ac, 90000.0}, {a, 50.0}});

  ScheduleTree tree;
  tree.AddRoot(abc, abc.DimList(), est.EstimateRows(abc));
  const int scan = tree.AddChild(0, a, EdgeKind::kScan, est.EstimateRows(a));
  const int hi = tree.AddChild(0, ab, EdgeKind::kSort, est.EstimateRows(ab));
  const int lo = tree.AddChild(0, ac, EdgeKind::kSort, est.EstimateRows(ac));
  tree.ResolveOrders();
  tree.Validate();

  ChooseBackends(tree, BackendMode::kAuto, kHashRatio);
  EXPECT_EQ(tree.node(hi).backend, EdgeBackend::kHash);
  EXPECT_EQ(tree.node(lo).backend, EdgeBackend::kSort);
  // Root and scan edges have no sort to replace; they are always kSort.
  EXPECT_EQ(tree.node(0).backend, EdgeBackend::kSort);
  EXPECT_EQ(tree.node(scan).backend, EdgeBackend::kSort);
}

TEST(Backend, ForceModesStampEverySortEdge) {
  const ViewId abc = ViewId::Full(3);
  ScheduleTree tree;
  tree.AddRoot(abc, abc.DimList(), 1000.0);
  const int scan = tree.AddChild(0, ViewId::FromDims({0, 1}),
                                 EdgeKind::kScan, 900.0);
  const int s1 = tree.AddChild(0, ViewId::FromDims({0, 2}),
                               EdgeKind::kSort, 800.0);
  const int s2 = tree.AddChild(0, ViewId::FromDims({1, 2}),
                               EdgeKind::kSort, 2.0);
  tree.ResolveOrders();
  tree.Validate();

  ChooseBackends(tree, BackendMode::kHash, kHashRatio);
  EXPECT_EQ(tree.node(s1).backend, EdgeBackend::kHash);
  EXPECT_EQ(tree.node(s2).backend, EdgeBackend::kHash);
  EXPECT_EQ(tree.node(0).backend, EdgeBackend::kSort);
  EXPECT_EQ(tree.node(scan).backend, EdgeBackend::kSort);

  // Forcing sort resets every edge, including previously hash-stamped ones.
  ChooseBackends(tree, BackendMode::kSort, kHashRatio);
  for (int i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(tree.node(i).backend, EdgeBackend::kSort) << "node " << i;
  }
}

TEST(Backend, SurvivesSerializeRoundTrip) {
  const ViewId abcd = ViewId::Full(4);
  ScheduleTree tree;
  tree.AddRoot(abcd, abcd.DimList(), 1000.0);
  const int acd = tree.AddChild(0, ViewId::FromDims({0, 2, 3}),
                                EdgeKind::kSort, 400.0);
  const int bcd = tree.AddChild(0, ViewId::FromDims({1, 2, 3}),
                                EdgeKind::kSort, 300.0);
  tree.ResolveOrders();
  tree.Validate();
  tree.SetBackend(acd, EdgeBackend::kHash);

  const ByteBuffer bytes = tree.Serialize();
  const ScheduleTree back = ScheduleTree::Deserialize(bytes);
  back.Validate();
  EXPECT_EQ(back.node(acd).backend, EdgeBackend::kHash);
  EXPECT_EQ(back.node(bcd).backend, EdgeBackend::kSort);
  for (int i = 0; i < tree.size(); ++i) {
    EXPECT_EQ(back.node(i).backend, tree.node(i).backend) << "node " << i;
  }
}

TEST(Backend, DeserializeRejectsOutOfRangeBackend) {
  const ViewId abc = ViewId::Full(3);
  ScheduleTree tree;
  tree.AddRoot(abc, abc.DimList(), 10.0);
  tree.ResolveOrders();
  tree.Validate();
  ByteBuffer bytes = tree.Serialize();
  // Node 0's backend byte sits after count(u32) + mask(u32) + parent(i32) +
  // edge(u8) + selected(u8) + order_fixed(u8) = offset 15.
  bytes[15] = std::byte{7};
  EXPECT_THROW(ScheduleTree::Deserialize(bytes), SncubeCorruptionError);
}

}  // namespace
}  // namespace sncube
