#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "io/checked_file.h"
#include "io/disk.h"
#include "io/external_sort.h"
#include "io/run_store.h"
#include "relation/sort.h"

namespace sncube {
namespace {

Relation RandomRelation(int width, int rows, Rng& rng, Key universe = 50) {
  Relation rel(width);
  std::vector<Key> keys(static_cast<std::size_t>(width));
  for (int r = 0; r < rows; ++r) {
    for (auto& k : keys) k = static_cast<Key>(rng.Below(universe));
    rel.Append(keys, r);
  }
  return rel;
}

TEST(DiskModel, ChargesWholeBlocks) {
  DiskModel disk({.block_bytes = 100, .memory_bytes = 1000});
  disk.ChargeRead(1);
  EXPECT_EQ(disk.blocks_read(), 1u);
  disk.ChargeRead(100);
  EXPECT_EQ(disk.blocks_read(), 2u);
  disk.ChargeWrite(101);
  EXPECT_EQ(disk.blocks_written(), 2u);
  EXPECT_EQ(disk.blocks_total(), 4u);
}

TEST(DiskModel, MergePassesZeroWhenInMemory) {
  DiskModel disk({.block_bytes = 100, .memory_bytes = 1000});
  EXPECT_EQ(disk.MergePasses(900), 0);
  EXPECT_EQ(disk.MergePasses(1000), 0);
}

TEST(DiskModel, MergePassesLogarithmic) {
  DiskModel disk({.block_bytes = 100, .memory_bytes = 1000});
  // 10 000 bytes → 10 runs, fan-in 10 → 1 pass.
  EXPECT_EQ(disk.MergePasses(10000), 1);
  // 100 000 bytes → 100 runs → 2 passes.
  EXPECT_EQ(disk.MergePasses(100000), 2);
}

template <typename Store>
class RunStoreTest : public ::testing::Test {};

using StoreTypes = ::testing::Types<MemoryRunStore, FileRunStore>;
TYPED_TEST_SUITE(RunStoreTest, StoreTypes);

TYPED_TEST(RunStoreTest, AppendAndReadBack) {
  TypeParam store;
  const int run = store.CreateRun();
  const std::vector<std::byte> data{std::byte{1}, std::byte{2}, std::byte{3}};
  store.Append(run, data);
  store.Append(run, data);
  EXPECT_EQ(store.Size(run), 6u);

  std::vector<std::byte> out(4);
  EXPECT_EQ(store.Read(run, 0, out), 4u);
  EXPECT_EQ(out[3], std::byte{1});
  EXPECT_EQ(store.Read(run, 4, out), 2u);
  EXPECT_EQ(store.Read(run, 6, out), 0u);
}

TYPED_TEST(RunStoreTest, MultipleIndependentRuns) {
  TypeParam store;
  const int a = store.CreateRun();
  const int b = store.CreateRun();
  store.Append(a, std::vector<std::byte>{std::byte{7}});
  store.Append(b, std::vector<std::byte>{std::byte{8}, std::byte{9}});
  EXPECT_EQ(store.Size(a), 1u);
  EXPECT_EQ(store.Size(b), 2u);
  std::vector<std::byte> out(1);
  store.Read(b, 1, out);
  EXPECT_EQ(out[0], std::byte{9});
}

TYPED_TEST(RunStoreTest, FreeReleases) {
  TypeParam store;
  const int run = store.CreateRun();
  store.Append(run, std::vector<std::byte>{std::byte{1}});
  store.Free(run);
  EXPECT_EQ(store.Size(run), 0u);
}

TEST(ExternalSort, InMemoryPathMatchesStdSort) {
  Rng rng(1);
  Relation rel = RandomRelation(3, 500, rng);
  DiskModel disk;  // default 64 MiB memory — fits easily
  const auto cols = IdentityOrder(3);
  ExternalSortStats stats;
  Relation sorted = ExternalSort(rel, cols, disk, nullptr, &stats);
  EXPECT_TRUE(stats.in_memory);
  EXPECT_EQ(sorted, SortRelation(rel, cols));
  EXPECT_GT(disk.blocks_total(), 0u);
}

TEST(ExternalSort, SpillPathMatchesStdSort) {
  Rng rng(2);
  Relation rel = RandomRelation(2, 2000, rng);
  // 16 bytes/row * 2000 = 32 000 bytes; 2 KiB memory forces ~16 runs.
  DiskModel disk({.block_bytes = 256, .memory_bytes = 2048});
  const auto cols = IdentityOrder(2);
  ExternalSortStats stats;
  Relation sorted = ExternalSort(rel, cols, disk, nullptr, &stats);
  EXPECT_FALSE(stats.in_memory);
  EXPECT_GT(stats.runs_formed, 1u);
  EXPECT_EQ(sorted, SortRelation(rel, cols));
}

TEST(ExternalSort, SpillThroughRealFiles) {
  Rng rng(3);
  Relation rel = RandomRelation(2, 1500, rng);
  DiskModel disk({.block_bytes = 256, .memory_bytes = 2048});
  FileRunStore store;
  const auto cols = IdentityOrder(2);
  Relation sorted = ExternalSort(rel, cols, disk, &store);
  EXPECT_EQ(sorted, SortRelation(rel, cols));
}

TEST(ExternalSort, MultiPassMerge) {
  Rng rng(4);
  Relation rel = RandomRelation(1, 4000, rng);
  // 12 bytes/row * 4000 = 48 000 bytes; 1 KiB memory → ~47 runs; fan-in
  // max(2, 1024/512-1)=2 → multiple merge passes.
  DiskModel disk({.block_bytes = 512, .memory_bytes = 1024});
  const auto cols = IdentityOrder(1);
  ExternalSortStats stats;
  Relation sorted = ExternalSort(rel, cols, disk, nullptr, &stats);
  EXPECT_GT(stats.merge_passes, 1);
  EXPECT_EQ(sorted, SortRelation(rel, cols));
}

TEST(ExternalSort, BlockBudgetWithinVitterBound) {
  Rng rng(5);
  const int rows = 8000;
  Relation rel = RandomRelation(1, rows, rng);
  DiskParams params{.block_bytes = 512, .memory_bytes = 4096};
  DiskModel disk(params);
  const auto cols = IdentityOrder(1);
  ExternalSortStats stats;
  ExternalSort(rel, cols, disk, nullptr, &stats);

  const double bytes = static_cast<double>(rel.ByteSize());
  const double n_over_b = bytes / params.block_bytes;
  // Run formation (read+write) + merge passes (read+write each) + final
  // materialization read; allow slack for block rounding per run boundary.
  const double passes = 1.0 + stats.merge_passes + 0.5;
  const double budget = 2.0 * n_over_b * passes + 4.0 * static_cast<double>(stats.runs_formed);
  EXPECT_LE(static_cast<double>(disk.blocks_total()), budget);
}

TEST(ExternalSort, EmptyAndSingleRow) {
  DiskModel disk({.block_bytes = 64, .memory_bytes = 128});
  Relation empty(2);
  const auto cols = IdentityOrder(2);
  EXPECT_EQ(ExternalSort(empty, cols, disk).size(), 0u);

  Relation one(2);
  one.Append(std::vector<Key>{9, 9}, 1);
  Relation sorted = ExternalSort(one, cols, disk);
  ASSERT_EQ(sorted.size(), 1u);
  EXPECT_EQ(sorted.key(0, 0), 9u);
}

TEST(ExternalSort, SortsByPermutedColumns) {
  Rng rng(6);
  Relation rel = RandomRelation(3, 1200, rng);
  DiskModel disk({.block_bytes = 256, .memory_bytes = 2048});
  const std::vector<int> order{2, 0, 1};
  Relation sorted = ExternalSort(rel, order, disk);
  EXPECT_TRUE(IsSorted(sorted, order));
  EXPECT_EQ(sorted, SortRelation(rel, order));
}

TEST(ExternalSort, StableAcrossSpill) {
  // Equal keys must keep input order even through run merges.
  Relation rel(1);
  for (int i = 0; i < 3000; ++i) rel.Append(std::vector<Key>{5}, i);
  DiskModel disk({.block_bytes = 256, .memory_bytes = 1024});
  const auto cols = IdentityOrder(1);
  Relation sorted = ExternalSort(rel, cols, disk);
  ASSERT_EQ(sorted.size(), 3000u);
  for (int i = 0; i < 3000; ++i) EXPECT_EQ(sorted.measure(i), i);
}

// Parameterized grid: the sorter must be correct and within its transfer
// budget for any (block, memory) geometry, including degenerate ones.
class ExternalSortGrid
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(ExternalSortGrid, CorrectAcrossGeometries) {
  const auto [block, memory] = GetParam();
  Rng rng(1000 + static_cast<std::uint64_t>(block + memory));
  Relation rel = RandomRelation(3, 2500, rng, 30);
  DiskModel disk({.block_bytes = static_cast<std::size_t>(block),
                  .memory_bytes = static_cast<std::size_t>(memory)});
  const auto cols = IdentityOrder(3);
  ExternalSortStats stats;
  Relation sorted = ExternalSort(rel, cols, disk, nullptr, &stats);
  EXPECT_EQ(sorted, SortRelation(rel, cols))
      << "B=" << block << " m=" << memory;
  if (rel.ByteSize() > static_cast<std::size_t>(memory)) {
    EXPECT_FALSE(stats.in_memory);
    EXPECT_GT(stats.runs_formed, 1u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ExternalSortGrid,
    ::testing::Combine(::testing::Values(64, 512, 4096),
                       ::testing::Values(256, 4096, 65536, 1 << 22)),
    [](const ::testing::TestParamInfo<std::tuple<int, int>>& info) {
      return "B" + std::to_string(std::get<0>(info.param)) + "_m" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Checked io layer: sealed files, sealed lines, and write-fault injection.

std::filesystem::path FreshIoDir(const char* name) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sncube_io_test_" + std::string(name) + "_" +
                    std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// A hook that corrupts exactly the n-th write it sees (0-based), then stops.
class OneShotCorruptor : public DiskFaultHook {
 public:
  OneShotCorruptor(WriteFault::Kind kind, int nth) : kind_(kind), nth_(nth) {}
  bool NextOpFails(bool) override { return false; }
  WriteFault NextWriteFault(std::size_t bytes) override {
    if (seen_++ != nth_) return {};
    WriteFault f;
    f.kind = kind_;
    // Damage somewhere in the middle of the write.
    f.offset = kind_ == WriteFault::Kind::kBitFlip ? bytes * 8 / 2 : bytes / 2;
    return f;
  }

 private:
  WriteFault::Kind kind_;
  int nth_;
  int seen_ = 0;
};

TEST(CheckedFile, SealedFileRoundTrip) {
  const auto dir = FreshIoDir("roundtrip");
  DiskModel disk;
  ByteBuffer payload;
  for (int i = 0; i < 300; ++i) payload.push_back(static_cast<std::byte>(i));
  WriteSealedFile(dir / "a.bin", payload, disk);
  EXPECT_GT(disk.blocks_written(), 0u);
  EXPECT_EQ(ReadSealedFile(dir / "a.bin", disk), payload);
  EXPECT_GT(disk.blocks_read(), 0u);
  // Overwrite semantics: a second write fully replaces the first.
  ByteBuffer shorter(3, std::byte{0x7});
  WriteSealedFile(dir / "a.bin", shorter, disk);
  EXPECT_EQ(ReadSealedFile(dir / "a.bin", disk), shorter);
  EXPECT_THROW(ReadSealedFile(dir / "absent.bin", disk), SncubeIoError);
  std::filesystem::remove_all(dir);
}

TEST(CheckedFile, InjectedBitFlipAndTornWriteAreDetectedOnRead) {
  const auto dir = FreshIoDir("faults");
  ByteBuffer payload(200, std::byte{0x42});
  for (const auto kind :
       {WriteFault::Kind::kBitFlip, WriteFault::Kind::kTornWrite}) {
    DiskModel disk;
    OneShotCorruptor hook(kind, 0);
    disk.set_fault_hook(&hook);
    WriteSealedFile(dir / "f.bin", payload, disk);
    disk.set_fault_hook(nullptr);
    EXPECT_THROW(ReadSealedFile(dir / "f.bin", disk), SncubeCorruptionError);
  }
  std::filesystem::remove_all(dir);
}

TEST(CheckedFile, SealedLineRoundTripAndDamageRejection) {
  const std::string sealed = SealLine("part 3 5 6 7");
  const auto text = VerifySealedLine(sealed);
  ASSERT_TRUE(text.has_value());
  EXPECT_EQ(*text, "part 3 5 6 7");

  // Any single-character damage, truncation, or suffix tampering is caught.
  for (std::size_t i = 0; i < sealed.size(); ++i) {
    std::string mutated = sealed;
    mutated[i] = mutated[i] == 'x' ? 'y' : 'x';
    EXPECT_FALSE(VerifySealedLine(mutated).has_value()) << "pos " << i;
    EXPECT_FALSE(VerifySealedLine(sealed.substr(0, i)).has_value());
  }
  // Two sealed lines torn together do not verify either.
  EXPECT_FALSE(VerifySealedLine(sealed + SealLine("part 4 1")).has_value());
}

TEST(CheckedFile, AppendSealedLineSurvivesTornTail) {
  const auto dir = FreshIoDir("append");
  const auto path = dir / "log.txt";
  DiskModel disk;
  AppendSealedLine(path, "part 0 1 2", disk);
  AppendSealedLine(path, "part 1 3", disk);
  // Third line is torn mid-write: acknowledged, but only a prefix lands.
  OneShotCorruptor hook(WriteFault::Kind::kTornWrite, 0);
  disk.set_fault_hook(&hook);
  AppendSealedLine(path, "part 2 5 6", disk);
  disk.set_fault_hook(nullptr);

  std::ifstream in(path);
  std::string line;
  std::vector<std::string> verified;
  while (std::getline(in, line)) {
    const auto text = VerifySealedLine(line);
    if (!text.has_value()) break;  // damaged tail: durable prefix ends here
    verified.push_back(*text);
  }
  EXPECT_EQ(verified,
            (std::vector<std::string>{"part 0 1 2", "part 1 3"}));
  std::filesystem::remove_all(dir);
}

TEST(RunSealing, CorruptedSpillRunsThrowTypedErrorsAtDrain) {
  Rng rng(9);
  Relation rel = RandomRelation(2, 2000, rng);
  const auto cols = IdentityOrder(2);
  // Fault-free baseline with the same geometry: several runs, real merge.
  const DiskParams geometry{.block_bytes = 256, .memory_bytes = 2048};
  {
    DiskModel disk(geometry);
    EXPECT_EQ(ExternalSort(rel, cols, disk, nullptr), SortRelation(rel, cols));
  }
  // A single flipped bit or torn block in any early run write must surface
  // as SncubeCorruptionError when the merge drains that run — never as a
  // silently mis-sorted relation.
  for (const auto kind :
       {WriteFault::Kind::kBitFlip, WriteFault::Kind::kTornWrite}) {
    for (int nth : {0, 3, 7}) {
      DiskModel disk(geometry);
      OneShotCorruptor hook(kind, nth);
      disk.set_fault_hook(&hook);
      EXPECT_THROW(ExternalSort(rel, cols, disk, nullptr),
                   SncubeCorruptionError)
          << "kind " << static_cast<int>(kind) << " nth " << nth;
    }
  }
}

}  // namespace
}  // namespace sncube
