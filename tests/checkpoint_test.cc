// CheckpointManager unit tests: save/load round-trip, manifest commit-point
// semantics, crash-truncation tolerance, transient-error retry with backoff
// charged to the simulated clock, and escalation after the retry budget.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/parallel_cube.h"
#include "io/disk.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "relation/serialize.h"

namespace sncube {
namespace {

std::filesystem::path FreshDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sncube_ckpt_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

// A small two-view partition result with recognizable contents.
CubeResult MakePartition() {
  CubeResult cube;
  ViewResult a;
  a.id = ViewId::FromDims({0, 1});
  a.order = {1, 0};
  a.selected = true;
  a.rel = Relation(2);
  a.rel.Append(std::vector<Key>{3, 1}, 10);
  a.rel.Append(std::vector<Key>{4, 1}, -7);
  cube.views[a.id] = a;
  ViewResult b;
  b.id = ViewId::FromDims({2});
  b.order = {2};
  b.selected = false;  // auxiliary views round-trip too
  b.rel = Relation(1);
  b.rel.Append(std::vector<Key>{9}, 42);
  cube.views[b.id] = b;
  return cube;
}

TEST(Checkpoint, DisabledWhenDirEmpty) {
  CheckpointOptions opts;
  EXPECT_FALSE(opts.enabled());
  CheckpointManager mgr(opts, 0);
  EXPECT_FALSE(mgr.enabled());
  EXPECT_EQ(mgr.LastCompletePartition(), -1);
}

TEST(Checkpoint, SaveLoadRoundTripPreservesViews) {
  const auto dir = FreshDir("roundtrip");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    EXPECT_EQ(mgr.LastCompletePartition(), -1);
    mgr.SavePartition(comm, 0, cube);
    mgr.SavePartition(comm, 2, cube);  // indices need not be contiguous
    EXPECT_EQ(mgr.LastCompletePartition(), 2);

    CubeResult restored;
    mgr.LoadPartition(comm, 0, &restored);
    ASSERT_EQ(restored.views.size(), cube.views.size());
    for (const auto& [id, vr] : cube.views) {
      const auto it = restored.views.find(id);
      ASSERT_NE(it, restored.views.end());
      EXPECT_EQ(it->second.order, vr.order);
      EXPECT_EQ(it->second.selected, vr.selected);
      EXPECT_EQ(it->second.rel, vr.rel);
      EXPECT_EQ(SerializeRelation(it->second.rel), SerializeRelation(vr.rel));
    }
    // Checkpoint traffic went through the io layer: blocks were charged.
    EXPECT_GT(comm.disk().blocks_total(), 0u);
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, ManifestLineIsTheCommitPoint) {
  const auto dir = FreshDir("commit");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    mgr.SavePartition(comm, 0, cube);

    // Simulate a crash after partition 1's view files hit disk but before
    // its manifest line: copy partition 0's files under partition-1 names.
    for (const auto& [id, vr] : cube.views) {
      char from[32];
      char to[32];
      std::snprintf(from, sizeof(from), "p%03d_v%05x.ckpt", 0, id.mask());
      std::snprintf(to, sizeof(to), "p%03d_v%05x.ckpt", 1, id.mask());
      std::filesystem::copy_file(dir / "rank0" / from, dir / "rank0" / to);
    }
    EXPECT_EQ(mgr.LastCompletePartition(), 0);  // 1 never committed
    CubeResult restored;
    EXPECT_THROW(mgr.LoadPartition(comm, 1, &restored), SncubeIoError);
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, TruncatedManifestTailIsIgnoredNotFatal) {
  const auto dir = FreshDir("truncated");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    mgr.SavePartition(comm, 0, cube);
    mgr.SavePartition(comm, 1, cube);
    {
      // A crash mid-append leaves a half-written line at the tail.
      std::ofstream out(dir / "rank0" / "progress.log", std::ios::app);
      out << "part 2";  // no masks, no newline
    }
    EXPECT_EQ(mgr.LastCompletePartition(), 1);
    CubeResult restored;
    mgr.LoadPartition(comm, 1, &restored);  // committed entries still load
    EXPECT_EQ(restored.views.size(), cube.views.size());
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CorruptViewFileThrowsTypedCorruptionError) {
  const auto dir = FreshDir("corrupt");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    mgr.SavePartition(comm, 0, cube);
    // Flip a byte in one view file's magic.
    char name[32];
    std::snprintf(name, sizeof(name), "p%03d_v%05x.ckpt", 0,
                  cube.views.begin()->first.mask());
    const auto path = dir / "rank0" / name;
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('\x00');
    f.close();
    CubeResult restored;
    EXPECT_THROW(mgr.LoadPartition(comm, 0, &restored), SncubeCorruptionError);
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, TransientDiskErrorsAreRetriedWithBackoffOnTheClock) {
  const auto dir = FreshDir("retry");
  const CubeResult cube = MakePartition();
  auto run = [&](const char* plan) {
    Cluster cluster(1);
    if (plan != nullptr) cluster.set_fault_plan(FaultPlan::Parse(plan));
    double local_time = 0;
    cluster.Run([&](Comm& comm) {
      CheckpointOptions opts;
      opts.dir = dir.string();
      CheckpointManager mgr(opts, comm.rank());
      mgr.SavePartition(comm, 0, cube);
      CubeResult restored;
      mgr.LoadPartition(comm, 0, &restored);
      EXPECT_EQ(restored.views.size(), cube.views.size());
      local_time = comm.LocalTime();
    });
    std::filesystem::remove_all(dir);
    return local_time;
  };
  const double clean = run(nullptr);
  // Rate 0.3 with 4 retries: some ops fail transiently and are retried (the
  // draws are deterministic under seed 11), none exhausts the budget.
  const double faulty = run("diskerr:0:0.3;seed:11");
  EXPECT_GT(faulty, clean);  // the backoff waits landed on the sim clock
}

TEST(Checkpoint, PersistentDiskErrorsEscalateAfterRetryBudget) {
  const auto dir = FreshDir("escalate");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.set_fault_plan(FaultPlan::Parse("diskerr:0:1.0;seed:5"));
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    opts.max_io_retries = 3;
    CheckpointManager mgr(opts, comm.rank());
    try {
      mgr.SavePartition(comm, 0, cube);
      ADD_FAILURE() << "persistent disk errors must escalate";
    } catch (const SncubeIoError& e) {
      EXPECT_NE(std::string(e.what()).find("3 retries"), std::string::npos);
    }
  });
  std::filesystem::remove_all(dir);
}

// S2 regression guard: the manifest append itself (not just the shard
// writes) must ride the capped-backoff transient-retry path. The hook fails
// exactly the manifest append's ChargeWrite — the third write of a two-view
// SavePartition — once.
TEST(Checkpoint, ManifestAppendIsRetriedOnTransientError) {
  class FailNthWriteOnce : public DiskFaultHook {
   public:
    explicit FailNthWriteOnce(int nth) : nth_(nth) {}
    bool NextOpFails(bool is_write) override {
      if (!is_write) return false;
      return writes_++ == nth_;
    }
    WriteFault NextWriteFault(std::size_t) override { return {}; }
    int writes() const { return writes_; }

   private:
    int nth_;
    int writes_ = 0;
  };

  const auto dir = FreshDir("manifest_retry");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    FailNthWriteOnce hook(2);  // writes 0,1 = the two shards; 2 = manifest
    comm.disk().set_fault_hook(&hook);
    const double before = comm.LocalTime();
    mgr.SavePartition(comm, 0, cube);
    comm.disk().set_fault_hook(nullptr);
    // The append failed once and was retried: one extra write op, and the
    // first backoff wait landed on the simulated clock.
    EXPECT_EQ(hook.writes(), 4);
    EXPECT_GE(comm.LocalTime() - before, opts.backoff_initial_s);
    // The retried append committed the partition, undamaged.
    EXPECT_EQ(mgr.LastCompletePartition(), 0);
    CubeResult restored;
    mgr.LoadPartition(comm, 0, &restored);
    EXPECT_EQ(restored.views.size(), cube.views.size());
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, VerifiedResumeQuarantinesDamagedShard) {
  const auto dir = FreshDir("quarantine");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    mgr.SavePartition(comm, 0, cube);
    mgr.SavePartition(comm, 1, cube);
    EXPECT_EQ(mgr.LastVerifiedPartition(comm), 1);

    // Flip one payload byte in a partition-1 shard.
    char name[32];
    std::snprintf(name, sizeof(name), "p%03d_v%05x.ckpt", 1,
                  cube.views.begin()->first.mask());
    const auto path = dir / "rank0" / name;
    {
      std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
      f.seekp(10);
      const char flipped = static_cast<char>(f.peek() ^ 0x10);
      f.put(flipped);
    }
    // The manifest still claims partition 1, but verification ends the
    // usable prefix at 0 and quarantines the damaged file.
    EXPECT_EQ(mgr.LastCompletePartition(), 1);
    EXPECT_EQ(mgr.LastVerifiedPartition(comm), 0);
    EXPECT_TRUE(std::filesystem::exists(path.string() + ".corrupt"));
    EXPECT_FALSE(std::filesystem::exists(path));
    // The quarantined partition now loads as missing, not as wrong data.
    CubeResult restored;
    EXPECT_THROW(mgr.LoadPartition(comm, 1, &restored), SncubeIoError);
    // Partition 0 is untouched.
    mgr.LoadPartition(comm, 0, &restored);
    EXPECT_EQ(restored.views.size(), cube.views.size());
  });
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// Torn-write crash points, end to end: a full p-rank build leaves a complete
// checkpoint; each scenario damages it the way a specific crash or silent
// fault would, and the restarted build must recover to a byte-identical
// cube — for p = 2 and p = 4.

using ShardBytes = std::vector<std::map<std::uint32_t, ByteBuffer>>;

ShardBytes BuildWithCheckpoint(const std::filesystem::path& dir, int p,
                               const DatasetSpec& spec, const Schema& schema) {
  ShardBytes shards(static_cast<std::size_t>(p));
  Cluster cluster(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, p, comm.rank());
    ParallelCubeOptions opts;
    opts.checkpoint.dir = dir.string();
    CubeResult cube = BuildParallelCube(comm, raw, schema, AllViews(3), opts);
    std::map<std::uint32_t, ByteBuffer> mine;
    for (const auto& [id, vr] : cube.views) {
      mine[id.mask()] = SerializeRelation(vr.rel);
    }
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(mine);
  });
  return shards;
}

// Largest manifest-named shard file of rank 0 (deterministic pick).
std::filesystem::path PickShardFile(const std::filesystem::path& dir) {
  std::filesystem::path best;
  for (const auto& entry :
       std::filesystem::directory_iterator(dir / "rank0")) {
    const std::string name = entry.path().filename().string();
    if (name.size() > 5 && name.substr(name.size() - 5) == ".ckpt" &&
        (best.empty() || entry.path().string() > best.string())) {
      best = entry.path();
    }
  }
  EXPECT_FALSE(best.empty());
  return best;
}

TEST(CheckpointCrashPoints, AllTornWriteScenariosRestartByteIdentical) {
  DatasetSpec spec;
  spec.rows = 1000;
  spec.cardinalities = {8, 5, 3};
  spec.seed = 23;
  const Schema schema = spec.MakeSchema();

  for (int p : {2, 4}) {
    const auto dir = FreshDir("crashpoints_p" + std::to_string(p));
    const ShardBytes golden = BuildWithCheckpoint(dir, p, spec, schema);
    const auto manifest = dir / "rank0" / "progress.log";

    // Each scenario damages a pristine copy of the completed checkpoint, so
    // scenarios stay independent (a rebuild over a damaged dir appends new
    // manifest lines, which would compound across scenarios otherwise).
    const auto pristine = std::filesystem::path(dir.string() + "_pristine");
    std::filesystem::remove_all(pristine);
    std::filesystem::copy(dir, pristine,
                          std::filesystem::copy_options::recursive);
    auto restore_pristine = [&] {
      std::filesystem::remove_all(dir);
      std::filesystem::copy(pristine, dir,
                            std::filesystem::copy_options::recursive);
    };

    auto rebuild_and_compare = [&](const char* scenario) {
      const ShardBytes again = BuildWithCheckpoint(dir, p, spec, schema);
      ASSERT_EQ(again.size(), golden.size()) << scenario;
      for (std::size_t r = 0; r < golden.size(); ++r) {
        ASSERT_EQ(again[r].size(), golden[r].size()) << scenario;
        for (const auto& [mask, bytes] : golden[r]) {
          EXPECT_EQ(again[r].at(mask), bytes)
              << scenario << " rank " << r << " mask " << mask;
        }
      }
    };

    // (a) Shards written, manifest line absent: drop rank 0's last line, as
    // if the rank crashed after the view files but before the commit point.
    restore_pristine();
    {
      std::vector<std::string> lines;
      std::ifstream in(manifest);
      std::string line;
      while (std::getline(in, line)) lines.push_back(line);
      in.close();
      ASSERT_GT(lines.size(), 1u);
      std::ofstream out(manifest, std::ios::trunc);
      for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
        out << lines[i] << '\n';
      }
    }
    rebuild_and_compare("(a) manifest line absent");

    // (b) Manifest line torn mid-write: the tail of the file is cut inside
    // the last line (no newline, CRC suffix incomplete).
    restore_pristine();
    {
      const auto size = std::filesystem::file_size(manifest);
      ASSERT_GT(size, 7u);
      std::filesystem::resize_file(manifest, size - 7);
    }
    rebuild_and_compare("(b) manifest line torn");

    // (c) Shard named by the manifest but truncated on disk.
    restore_pristine();
    {
      const auto shard = PickShardFile(dir);
      const auto size = std::filesystem::file_size(shard);
      std::filesystem::resize_file(shard, size / 2);
    }
    rebuild_and_compare("(c) shard truncated");
    // The damaged shard was quarantined during the rebuild's verification.
    bool corrupt_seen = false;
    for (const auto& entry :
         std::filesystem::directory_iterator(dir / "rank0")) {
      corrupt_seen |= entry.path().string().ends_with(".corrupt");
    }
    EXPECT_TRUE(corrupt_seen);

    // (d) Shard named by the manifest with one bit flipped mid-payload.
    restore_pristine();
    {
      const auto shard = PickShardFile(dir);
      std::fstream f(shard, std::ios::in | std::ios::out | std::ios::binary);
      const auto size = std::filesystem::file_size(shard);
      f.seekp(static_cast<std::streamoff>(size / 2));
      const char flipped = static_cast<char>(f.peek() ^ 0x01);
      f.put(flipped);
    }
    rebuild_and_compare("(d) shard bit-flipped");

    std::filesystem::remove_all(pristine);
    std::filesystem::remove_all(dir);
  }
}

TEST(Checkpoint, FullyCheckpointedBuildRestoresEveryPartition) {
  // Second build over a completed checkpoint dir restores every non-empty
  // partition and still produces the identical cube.
  const auto dir = FreshDir("full_restore");
  DatasetSpec spec;
  spec.rows = 1200;
  spec.cardinalities = {10, 5, 3};
  spec.seed = 17;
  const Schema schema = spec.MakeSchema();
  const int p = 2;

  auto build = [&](std::vector<CubeResult>* shards,
                   std::vector<ParallelCubeStats>* stats) {
    Cluster cluster(p);
    std::mutex mu;
    cluster.Run([&](Comm& comm) {
      const Relation raw = GenerateSlice(spec, p, comm.rank());
      ParallelCubeOptions opts;
      opts.checkpoint.dir = dir.string();
      ParallelCubeStats st;
      CubeResult cube =
          BuildParallelCube(comm, raw, schema, AllViews(3), opts, &st);
      std::lock_guard<std::mutex> lock(mu);
      (*shards)[static_cast<std::size_t>(comm.rank())] = std::move(cube);
      (*stats)[static_cast<std::size_t>(comm.rank())] = st;
    });
  };

  std::vector<CubeResult> first(p);
  std::vector<ParallelCubeStats> first_stats(p);
  build(&first, &first_stats);
  EXPECT_EQ(first_stats[0].partitions_restored, 0);

  std::vector<CubeResult> second(p);
  std::vector<ParallelCubeStats> second_stats(p);
  build(&second, &second_stats);
  EXPECT_EQ(second_stats[0].partitions_restored, second_stats[0].partitions);
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(second[r].views.size(), first[r].views.size());
    for (const auto& [id, vr] : first[r].views) {
      EXPECT_EQ(SerializeRelation(second[r].views.at(id).rel),
                SerializeRelation(vr.rel));
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sncube
