// CheckpointManager unit tests: save/load round-trip, manifest commit-point
// semantics, crash-truncation tolerance, transient-error retry with backoff
// charged to the simulated clock, and escalation after the retry budget.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/parallel_cube.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "relation/serialize.h"

namespace sncube {
namespace {

std::filesystem::path FreshDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sncube_ckpt_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  return dir;
}

// A small two-view partition result with recognizable contents.
CubeResult MakePartition() {
  CubeResult cube;
  ViewResult a;
  a.id = ViewId::FromDims({0, 1});
  a.order = {1, 0};
  a.selected = true;
  a.rel = Relation(2);
  a.rel.Append(std::vector<Key>{3, 1}, 10);
  a.rel.Append(std::vector<Key>{4, 1}, -7);
  cube.views[a.id] = a;
  ViewResult b;
  b.id = ViewId::FromDims({2});
  b.order = {2};
  b.selected = false;  // auxiliary views round-trip too
  b.rel = Relation(1);
  b.rel.Append(std::vector<Key>{9}, 42);
  cube.views[b.id] = b;
  return cube;
}

TEST(Checkpoint, DisabledWhenDirEmpty) {
  CheckpointOptions opts;
  EXPECT_FALSE(opts.enabled());
  CheckpointManager mgr(opts, 0);
  EXPECT_FALSE(mgr.enabled());
  EXPECT_EQ(mgr.LastCompletePartition(), -1);
}

TEST(Checkpoint, SaveLoadRoundTripPreservesViews) {
  const auto dir = FreshDir("roundtrip");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    EXPECT_EQ(mgr.LastCompletePartition(), -1);
    mgr.SavePartition(comm, 0, cube);
    mgr.SavePartition(comm, 2, cube);  // indices need not be contiguous
    EXPECT_EQ(mgr.LastCompletePartition(), 2);

    CubeResult restored;
    mgr.LoadPartition(comm, 0, &restored);
    ASSERT_EQ(restored.views.size(), cube.views.size());
    for (const auto& [id, vr] : cube.views) {
      const auto it = restored.views.find(id);
      ASSERT_NE(it, restored.views.end());
      EXPECT_EQ(it->second.order, vr.order);
      EXPECT_EQ(it->second.selected, vr.selected);
      EXPECT_EQ(it->second.rel, vr.rel);
      EXPECT_EQ(SerializeRelation(it->second.rel), SerializeRelation(vr.rel));
    }
    // Checkpoint traffic went through the io layer: blocks were charged.
    EXPECT_GT(comm.disk().blocks_total(), 0u);
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, ManifestLineIsTheCommitPoint) {
  const auto dir = FreshDir("commit");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    mgr.SavePartition(comm, 0, cube);

    // Simulate a crash after partition 1's view files hit disk but before
    // its manifest line: copy partition 0's files under partition-1 names.
    for (const auto& [id, vr] : cube.views) {
      char from[32];
      char to[32];
      std::snprintf(from, sizeof(from), "p%03d_v%05x.ckpt", 0, id.mask());
      std::snprintf(to, sizeof(to), "p%03d_v%05x.ckpt", 1, id.mask());
      std::filesystem::copy_file(dir / "rank0" / from, dir / "rank0" / to);
    }
    EXPECT_EQ(mgr.LastCompletePartition(), 0);  // 1 never committed
    CubeResult restored;
    EXPECT_THROW(mgr.LoadPartition(comm, 1, &restored), SncubeIoError);
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, TruncatedManifestTailIsIgnoredNotFatal) {
  const auto dir = FreshDir("truncated");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    mgr.SavePartition(comm, 0, cube);
    mgr.SavePartition(comm, 1, cube);
    {
      // A crash mid-append leaves a half-written line at the tail.
      std::ofstream out(dir / "rank0" / "progress.log", std::ios::app);
      out << "part 2";  // no masks, no newline
    }
    EXPECT_EQ(mgr.LastCompletePartition(), 1);
    CubeResult restored;
    mgr.LoadPartition(comm, 1, &restored);  // committed entries still load
    EXPECT_EQ(restored.views.size(), cube.views.size());
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, CorruptViewFileThrowsTypedCorruptionError) {
  const auto dir = FreshDir("corrupt");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    CheckpointManager mgr(opts, comm.rank());
    mgr.SavePartition(comm, 0, cube);
    // Flip a byte in one view file's magic.
    char name[32];
    std::snprintf(name, sizeof(name), "p%03d_v%05x.ckpt", 0,
                  cube.views.begin()->first.mask());
    const auto path = dir / "rank0" / name;
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(0);
    f.put('\x00');
    f.close();
    CubeResult restored;
    EXPECT_THROW(mgr.LoadPartition(comm, 0, &restored), SncubeCorruptionError);
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, TransientDiskErrorsAreRetriedWithBackoffOnTheClock) {
  const auto dir = FreshDir("retry");
  const CubeResult cube = MakePartition();
  auto run = [&](const char* plan) {
    Cluster cluster(1);
    if (plan != nullptr) cluster.set_fault_plan(FaultPlan::Parse(plan));
    double local_time = 0;
    cluster.Run([&](Comm& comm) {
      CheckpointOptions opts;
      opts.dir = dir.string();
      CheckpointManager mgr(opts, comm.rank());
      mgr.SavePartition(comm, 0, cube);
      CubeResult restored;
      mgr.LoadPartition(comm, 0, &restored);
      EXPECT_EQ(restored.views.size(), cube.views.size());
      local_time = comm.LocalTime();
    });
    std::filesystem::remove_all(dir);
    return local_time;
  };
  const double clean = run(nullptr);
  // Rate 0.3 with 4 retries: some ops fail transiently and are retried (the
  // draws are deterministic under seed 11), none exhausts the budget.
  const double faulty = run("diskerr:0:0.3;seed:11");
  EXPECT_GT(faulty, clean);  // the backoff waits landed on the sim clock
}

TEST(Checkpoint, PersistentDiskErrorsEscalateAfterRetryBudget) {
  const auto dir = FreshDir("escalate");
  const CubeResult cube = MakePartition();
  Cluster cluster(1);
  cluster.set_fault_plan(FaultPlan::Parse("diskerr:0:1.0;seed:5"));
  cluster.Run([&](Comm& comm) {
    CheckpointOptions opts;
    opts.dir = dir.string();
    opts.max_io_retries = 3;
    CheckpointManager mgr(opts, comm.rank());
    try {
      mgr.SavePartition(comm, 0, cube);
      ADD_FAILURE() << "persistent disk errors must escalate";
    } catch (const SncubeIoError& e) {
      EXPECT_NE(std::string(e.what()).find("3 retries"), std::string::npos);
    }
  });
  std::filesystem::remove_all(dir);
}

TEST(Checkpoint, FullyCheckpointedBuildRestoresEveryPartition) {
  // Second build over a completed checkpoint dir restores every non-empty
  // partition and still produces the identical cube.
  const auto dir = FreshDir("full_restore");
  DatasetSpec spec;
  spec.rows = 1200;
  spec.cardinalities = {10, 5, 3};
  spec.seed = 17;
  const Schema schema = spec.MakeSchema();
  const int p = 2;

  auto build = [&](std::vector<CubeResult>* shards,
                   std::vector<ParallelCubeStats>* stats) {
    Cluster cluster(p);
    std::mutex mu;
    cluster.Run([&](Comm& comm) {
      const Relation raw = GenerateSlice(spec, p, comm.rank());
      ParallelCubeOptions opts;
      opts.checkpoint.dir = dir.string();
      ParallelCubeStats st;
      CubeResult cube =
          BuildParallelCube(comm, raw, schema, AllViews(3), opts, &st);
      std::lock_guard<std::mutex> lock(mu);
      (*shards)[static_cast<std::size_t>(comm.rank())] = std::move(cube);
      (*stats)[static_cast<std::size_t>(comm.rank())] = st;
    });
  };

  std::vector<CubeResult> first(p);
  std::vector<ParallelCubeStats> first_stats(p);
  build(&first, &first_stats);
  EXPECT_EQ(first_stats[0].partitions_restored, 0);

  std::vector<CubeResult> second(p);
  std::vector<ParallelCubeStats> second_stats(p);
  build(&second, &second_stats);
  EXPECT_EQ(second_stats[0].partitions_restored, second_stats[0].partitions);
  for (int r = 0; r < p; ++r) {
    ASSERT_EQ(second[r].views.size(), first[r].views.size());
    for (const auto& [id, vr] : first[r].views) {
      EXPECT_EQ(SerializeRelation(second[r].views.at(id).rel),
                SerializeRelation(vr.rel));
    }
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sncube
