#include <gtest/gtest.h>

#include <algorithm>

#include "data/generator.h"
#include "lattice/lattice.h"
#include "query/engine.h"
#include "query/greedy_select.h"
#include "seqcube/seq_cube.h"

namespace sncube {
namespace {

struct QueryFixture : ::testing::Test {
  void SetUp() override {
    spec.rows = 4000;
    spec.cardinalities = {20, 10, 5, 3};
    spec.seed = 9;
    raw = GenerateDataset(spec);
    schema = spec.MakeSchema();
    cube = SequentialCube(raw, schema, AllViews(4));
  }

  DatasetSpec spec;
  Relation raw;
  Schema schema;
  CubeResult cube;
};

TEST_F(QueryFixture, RoutesToExactViewWhenMaterialized) {
  CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({1, 3});
  EXPECT_EQ(engine.Route(q), ViewId::FromDims({1, 3}));
}

TEST_F(QueryFixture, GroupByMatchesBruteForce) {
  CubeQueryEngine engine(cube);
  for (ViewId v : AllViews(4)) {
    Query q;
    q.group_by = v;
    const auto answer = engine.Execute(q);
    EXPECT_EQ(answer.rel, BruteForceView(raw, v, AggFn::kSum))
        << "view mask=" << v.mask();
  }
}

TEST_F(QueryFixture, FilterRoutesToCoveringView) {
  CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({1});
  q.filters = {{.dim = 0, .value = 3}};
  const ViewId routed = engine.Route(q);
  EXPECT_TRUE(ViewId::FromDims({0, 1}).IsSubsetOf(routed));

  const auto answer = engine.Execute(q);
  // Brute force: filter raw rows on D0 == 3, then group by D1.
  Relation filtered(raw.width());
  for (std::size_t r = 0; r < raw.size(); ++r) {
    if (raw.key(r, 0) == 3) filtered.AppendRow(raw, r);
  }
  EXPECT_EQ(answer.rel,
            BruteForceView(filtered, ViewId::FromDims({1}), AggFn::kSum));
}

TEST_F(QueryFixture, PartialCubeFallsBackToAncestor) {
  const std::vector<ViewId> selected{ViewId::Full(4),
                                     ViewId::FromDims({0, 1})};
  const CubeResult partial = SequentialCube(raw, schema, selected);
  CubeQueryEngine engine(partial);
  Query q;
  q.group_by = ViewId::FromDims({1});
  // D1 alone is not materialized; the smallest cover is AB.
  EXPECT_EQ(engine.Route(q), ViewId::FromDims({0, 1}));
  const auto answer = engine.Execute(q);
  EXPECT_EQ(answer.rel,
            BruteForceView(raw, ViewId::FromDims({1}), AggFn::kSum));
}

TEST_F(QueryFixture, RouteTieBreaksOnSmallestViewId) {
  // Two covering views with EQUAL row counts: routing must deterministically
  // pick the smaller ViewId (mask), independent of hash-map iteration order.
  const std::vector<ViewId> selected{ViewId::Full(4),
                                     ViewId::FromDims({0, 3}),
                                     ViewId::FromDims({1, 3})};
  CubeResult partial = SequentialCube(raw, schema, selected);
  // Force the tie regardless of data: trim both candidates to the same
  // row count (the engine only compares sizes, not contents, when routing).
  ViewResult& a = partial.views.at(ViewId::FromDims({0, 3}));
  ViewResult& b = partial.views.at(ViewId::FromDims({1, 3}));
  const std::size_t n = std::min(a.rel.size(), b.rel.size());
  const auto trim = [&](ViewResult& vr) {
    Relation t(vr.rel.width());
    for (std::size_t r = 0; r < n; ++r) t.AppendRow(vr.rel, r);
    vr.rel = std::move(t);
  };
  trim(a);
  trim(b);

  CubeQueryEngine engine(partial);
  Query q;
  q.group_by = ViewId::FromDims({3});
  // Both AD (mask 0b1001) and BD (mask 0b1010) cover {3} with equal rows;
  // the smaller mask (AD) must win, every time.
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(engine.Route(q), ViewId::FromDims({0, 3}));
  }
}

TEST_F(QueryFixture, ThrowsWhenNothingCovers) {
  const std::vector<ViewId> selected{ViewId::FromDims({0, 1})};
  const CubeResult partial = SequentialCube(raw, schema, selected);
  CubeQueryEngine engine(partial);
  Query q;
  q.group_by = ViewId::FromDims({3});
  EXPECT_THROW(engine.Route(q), SncubeError);
}

TEST_F(QueryFixture, EmptyGroupByGivesGrandTotal) {
  CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::Empty();
  const auto answer = engine.Execute(q);
  ASSERT_EQ(answer.rel.size(), 1u);
  EXPECT_EQ(answer.rel.measure(0), static_cast<Measure>(spec.rows));
}

TEST_F(QueryFixture, TopKReturnsLargestGroups) {
  CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({0});
  q.top_k = 3;
  const auto top = engine.Execute(q);
  ASSERT_EQ(top.rel.size(), 3u);
  // Descending measures.
  EXPECT_GE(top.rel.measure(0), top.rel.measure(1));
  EXPECT_GE(top.rel.measure(1), top.rel.measure(2));
  // The top measure equals the true maximum over all groups.
  q.top_k = 0;
  const auto all = engine.Execute(q);
  Measure best = all.rel.measure(0);
  for (std::size_t r = 1; r < all.rel.size(); ++r) {
    best = std::max(best, all.rel.measure(r));
  }
  EXPECT_EQ(top.rel.measure(0), best);
}

TEST_F(QueryFixture, TopKLargerThanGroupsReturnsAll) {
  CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({3});  // 3 distinct values
  q.top_k = 100;
  EXPECT_EQ(engine.Execute(q).rel.size(), 3u);
}

TEST(GreedySelect, AlwaysIncludesFullView) {
  Schema schema({16, 8, 4});
  AnalyticEstimator est(schema, 10000);
  const auto selected = GreedySelectViews(3, 1, est);
  ASSERT_EQ(selected.size(), 1u);
  EXPECT_EQ(selected[0], ViewId::Full(3));
}

TEST(GreedySelect, PicksHighBenefitViewsFirst) {
  // A dense cube: small views save the most per query and get picked early.
  Schema schema({100, 100, 100});
  AnalyticEstimator est(schema, 1000000);
  const auto selected = GreedySelectViews(3, 4, est);
  ASSERT_EQ(selected.size(), 4u);
  // After the full view, greedy picks 2-dim views (each ~10k rows vs the
  // ~630k of the full view, each covering 4 sub-views).
  for (std::size_t i = 1; i < selected.size(); ++i) {
    EXPECT_EQ(selected[i].dim_count(), 2) << "pick " << i;
  }
}

TEST(GreedySelect, CountAndUniqueness) {
  Schema schema({64, 32, 16, 8, 4});
  AnalyticEstimator est(schema, 500000);
  const auto selected = GreedySelectViews(5, 20, est);
  EXPECT_EQ(selected.size(), 20u);
  std::vector<std::uint32_t> masks;
  for (ViewId v : selected) masks.push_back(v.mask());
  std::sort(masks.begin(), masks.end());
  EXPECT_EQ(std::unique(masks.begin(), masks.end()), masks.end());
}

TEST(GreedySelect, FractionRounds) {
  Schema schema({16, 8, 4});
  AnalyticEstimator est(schema, 10000);
  EXPECT_EQ(GreedySelectFraction(3, 0.5, est).size(), 4u);
  EXPECT_EQ(GreedySelectFraction(3, 1.0, est).size(), 8u);
  EXPECT_EQ(GreedySelectFraction(3, 0.01, est).size(), 1u);
}

TEST(GreedySelect, BenefitNeverBelowMaterializingEverything) {
  // Selecting all views must drive every query cost to its own size.
  Schema schema({8, 4});
  AnalyticEstimator est(schema, 1000);
  const auto selected = GreedySelectViews(2, 4, est);
  EXPECT_EQ(selected.size(), 4u);
}

}  // namespace
}  // namespace sncube
