#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <numeric>
#include <vector>

#include "net/cluster.h"
#include "net/wire.h"

namespace sncube {
namespace {

ByteBuffer Bytes(std::initializer_list<int> vals) {
  ByteBuffer b;
  for (int v : vals) WirePut(b, v);
  return b;
}

std::vector<int> Ints(const ByteBuffer& b) {
  std::vector<int> out;
  WireReader r(b);
  while (!r.AtEnd()) out.push_back(r.Get<int>());
  return out;
}

TEST(Wire, ScalarAndVectorRoundTrip) {
  ByteBuffer b;
  WirePut(b, 42);
  WirePut(b, 3.5);
  WirePutVector(b, std::vector<std::uint32_t>{7, 8, 9});
  WireReader r(b);
  EXPECT_EQ(r.Get<int>(), 42);
  EXPECT_DOUBLE_EQ(r.Get<double>(), 3.5);
  EXPECT_EQ(r.GetVector<std::uint32_t>(), (std::vector<std::uint32_t>{7, 8, 9}));
  EXPECT_TRUE(r.AtEnd());
}

TEST(Wire, UnderrunThrows) {
  ByteBuffer b;
  WirePut(b, std::uint16_t{1});
  WireReader r(b);
  EXPECT_THROW(r.Get<std::uint64_t>(), SncubeError);
}

TEST(Cluster, AllToAllvDeliversBySource) {
  for (int p : {1, 2, 3, 8}) {
    Cluster cluster(p);
    std::vector<std::vector<std::vector<int>>> received(p);
    std::mutex mu;
    cluster.Run([&](Comm& comm) {
      std::vector<ByteBuffer> send(comm.size());
      for (int dst = 0; dst < comm.size(); ++dst) {
        send[dst] = Bytes({comm.rank() * 100 + dst});
      }
      auto recv = comm.AllToAllv(std::move(send));
      std::vector<std::vector<int>> mine;
      for (auto& buf : recv) mine.push_back(Ints(buf));
      std::lock_guard<std::mutex> lock(mu);
      received[comm.rank()] = std::move(mine);
    });
    for (int r = 0; r < p; ++r) {
      for (int src = 0; src < p; ++src) {
        ASSERT_EQ(received[r][src].size(), 1u);
        EXPECT_EQ(received[r][src][0], src * 100 + r);
      }
    }
  }
}

TEST(Cluster, AllToAllvEmptyBuffersOk) {
  Cluster cluster(4);
  cluster.Run([&](Comm& comm) {
    std::vector<ByteBuffer> send(comm.size());  // all empty
    auto recv = comm.AllToAllv(std::move(send));
    for (const auto& b : recv) EXPECT_TRUE(b.empty());
  });
}

TEST(Cluster, BroadcastFromEveryRoot) {
  const int p = 5;
  Cluster cluster(p);
  cluster.Run([&](Comm& comm) {
    for (int root = 0; root < comm.size(); ++root) {
      ByteBuffer msg;
      if (comm.rank() == root) msg = Bytes({root * 7});
      ByteBuffer got = comm.Broadcast(root, std::move(msg));
      ASSERT_EQ(Ints(got).size(), 1u);
      EXPECT_EQ(Ints(got)[0], root * 7);
    }
  });
}

TEST(Cluster, GatherCollectsAtRoot) {
  const int p = 4;
  Cluster cluster(p);
  cluster.Run([&](Comm& comm) {
    auto got = comm.Gather(2, Bytes({comm.rank()}));
    if (comm.rank() == 2) {
      ASSERT_EQ(static_cast<int>(got.size()), p);
      for (int src = 0; src < p; ++src) EXPECT_EQ(Ints(got[src])[0], src);
    } else {
      EXPECT_TRUE(got.empty());
    }
  });
}

TEST(Cluster, AllGatherEveryoneSeesAll) {
  const int p = 3;
  Cluster cluster(p);
  cluster.Run([&](Comm& comm) {
    auto got = comm.AllGather(Bytes({comm.rank() + 10}));
    ASSERT_EQ(static_cast<int>(got.size()), p);
    for (int src = 0; src < p; ++src) EXPECT_EQ(Ints(got[src])[0], src + 10);
  });
}

TEST(Cluster, Reductions) {
  Cluster cluster(6);
  cluster.Run([&](Comm& comm) {
    const auto r = static_cast<std::uint64_t>(comm.rank());
    EXPECT_EQ(comm.AllReduceSum(r), 0u + 1 + 2 + 3 + 4 + 5);
    EXPECT_EQ(comm.AllReduceMax(r * 3), 15u);
    EXPECT_DOUBLE_EQ(comm.AllReduceMax(static_cast<double>(comm.rank()) - 2.5),
                     2.5);
  });
}

TEST(Cluster, SimClockTakesMaxOverRanks) {
  Cluster cluster(4);
  cluster.Run([&](Comm& comm) {
    // Rank r does r seconds of CPU work; after the barrier the clock is the
    // slowest rank's plus the barrier latency.
    comm.ChargeCpu(static_cast<double>(comm.rank()));
    comm.Barrier();
    EXPECT_GE(comm.LocalTime(), 3.0);
  });
  EXPECT_GE(cluster.SimTimeSeconds(), 3.0);
  EXPECT_LT(cluster.SimTimeSeconds(), 3.1);
}

TEST(Cluster, CommTimeScalesWithBytes) {
  CostParams cost;
  cost.net_latency_s = 0;
  cost.net_byte_s = 1e-6;
  Cluster small(2, cost);
  small.Run([&](Comm& comm) {
    std::vector<ByteBuffer> send(2);
    send[1 - comm.rank()] = ByteBuffer(1000);
    comm.AllToAllv(std::move(send));
  });
  // h = payload + integrity trailer, at 1e-6 s per byte.
  EXPECT_NEAR(small.SimTimeSeconds(),
              static_cast<double>(1000 + kFrameTrailerBytes) * 1e-6, 1e-9);

  Cluster big(2, cost);
  big.Run([&](Comm& comm) {
    std::vector<ByteBuffer> send(2);
    send[1 - comm.rank()] = ByteBuffer(10000);
    comm.AllToAllv(std::move(send));
  });
  EXPECT_NEAR(big.SimTimeSeconds(),
              static_cast<double>(10000 + kFrameTrailerBytes) * 1e-6, 1e-9);
}

TEST(Cluster, SelfDeliveryIsFree) {
  CostParams cost;
  cost.net_latency_s = 0;
  cost.net_byte_s = 1.0;
  Cluster cluster(2, cost);
  cluster.Run([&](Comm& comm) {
    std::vector<ByteBuffer> send(2);
    send[comm.rank()] = ByteBuffer(1 << 20);  // to self only
    auto recv = comm.AllToAllv(std::move(send));
    EXPECT_EQ(recv[comm.rank()].size(), 1u << 20);
  });
  EXPECT_DOUBLE_EQ(cluster.SimTimeSeconds(), 0.0);
  EXPECT_EQ(cluster.BytesSent(), 0u);
}

TEST(Cluster, DiskBlocksFoldIntoClockAtSync) {
  CostParams cost;
  cost.net_latency_s = 0;
  cost.disk_block_s = 0.5;
  Cluster cluster(2, cost);
  cluster.Run([&](Comm& comm) {
    if (comm.rank() == 0) {
      comm.disk().ChargeRead(comm.disk().params().block_bytes * 4);  // 4 blocks
    }
    comm.Barrier();
    EXPECT_DOUBLE_EQ(comm.LocalTime(), 2.0);  // both ranks synced to max
  });
}

TEST(Cluster, MetricsAttributedToPhases) {
  Cluster cluster(2);
  cluster.Run([&](Comm& comm) {
    comm.SetPhase("alpha");
    std::vector<ByteBuffer> send(2);
    send[1 - comm.rank()] = ByteBuffer(100);
    comm.AllToAllv(std::move(send));
    comm.SetPhase("beta");
    std::vector<ByteBuffer> send2(2);
    send2[1 - comm.rank()] = ByteBuffer(7);
    comm.AllToAllv(std::move(send2));
  });
  // Each cross-rank message carries the 16-byte integrity trailer.
  EXPECT_EQ(cluster.BytesSent("alpha"), 2 * (100 + kFrameTrailerBytes));
  EXPECT_EQ(cluster.BytesSent("beta"), 2 * (7 + kFrameTrailerBytes));
  EXPECT_EQ(cluster.BytesSent(), 2 * (107 + 2 * kFrameTrailerBytes));
  const auto& stats = cluster.stats()[0];
  EXPECT_EQ(stats.phases.at("alpha").messages, 1u);
  EXPECT_GT(stats.phases.at("alpha").net_s, 0.0);
}

TEST(Cluster, ChargeSortRecordsUsesNLogN) {
  CostParams cost;
  cost.cpu_sort_record_s = 1.0;
  Cluster cluster(1, cost);
  cluster.Run([&](Comm& comm) {
    comm.ChargeSortRecords(8);  // 8 * log2(8) = 24
    EXPECT_DOUBLE_EQ(comm.LocalTime(), 24.0);
    comm.ChargeSortRecords(1);  // no-op
    EXPECT_DOUBLE_EQ(comm.LocalTime(), 24.0);
  });
}

TEST(Cluster, RankExceptionPropagatesNamingTheRank) {
  Cluster cluster(3);
  try {
    cluster.Run([&](Comm& comm) {
      if (comm.rank() == 1) throw SncubeError("rank 1 exploded");
      // Other ranks proceed through a collective without deadlocking.
      comm.AllReduceSum(1);
    });
    FAIL() << "Run must rethrow the rank failure";
  } catch (const ClusterAbortedError& e) {
    EXPECT_EQ(e.failed_rank(), 1);
    EXPECT_NE(std::string(e.what()).find("rank 1"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("exploded"), std::string::npos);
  }
  // Forensics: the failure report flags exactly the ranks that died, and the
  // cluster's accumulated stats stay at their pre-Run values.
  ASSERT_TRUE(cluster.last_failure().has_value());
  const FailureReport& report = *cluster.last_failure();
  EXPECT_EQ(report.failed_rank, 1);
  ASSERT_EQ(report.partial_stats.size(), 3u);
  EXPECT_TRUE(report.partial_stats[1].failed);
  EXPECT_EQ(cluster.BytesSent(), 0u);
  EXPECT_DOUBLE_EQ(cluster.SimTimeSeconds(), 0.0);
}

// The reset policy (cluster.h): metrics are run-scoped. A second Run reports
// exactly what that Run did — nothing carried over from the first — and the
// simulated clock, supersteps, and phase stats all restart from zero.
TEST(Cluster, MetricsAreRunScoped) {
  Cluster cluster(2);
  auto program = [&](Comm& comm) {
    std::vector<ByteBuffer> send(2);
    send[1 - comm.rank()] = ByteBuffer(50);
    comm.AllToAllv(std::move(send));
  };
  cluster.Run(program);
  const double t1 = cluster.SimTimeSeconds();
  EXPECT_EQ(cluster.BytesSent(), 2 * (50 + kFrameTrailerBytes));
  cluster.Run(program);
  // Not doubled: the second Run stands alone.
  EXPECT_EQ(cluster.BytesSent(), 2 * (50 + kFrameTrailerBytes));
  EXPECT_DOUBLE_EQ(cluster.SimTimeSeconds(), t1);
  for (const auto& rs : cluster.stats()) {
    EXPECT_EQ(rs.supersteps, 1u);
  }
  cluster.ResetStats();
  EXPECT_EQ(cluster.BytesSent(), 0u);
}

// A heavier first Run must leave no trace in a lighter second Run's numbers
// (the inconsistency this policy replaced: phases and supersteps used to
// accumulate across Runs while sim_time_s was overwritten per Run).
TEST(Cluster, SecondRunUnpollutedByHeavierFirstRun) {
  Cluster cluster(2);
  cluster.Run([&](Comm& comm) {
    comm.SetPhase("heavy");
    comm.ChargeScanRecords(1'000'000);
    std::vector<ByteBuffer> send(2);
    send[1 - comm.rank()] = ByteBuffer(5000);
    comm.AllToAllv(std::move(send));
    comm.Barrier();
  });
  EXPECT_EQ(cluster.BytesSent(), 2 * (5000 + kFrameTrailerBytes));
  const double heavy_time = cluster.SimTimeSeconds();

  cluster.Run([&](Comm& comm) {
    std::vector<ByteBuffer> send(2);
    send[1 - comm.rank()] = ByteBuffer(10);
    comm.AllToAllv(std::move(send));
  });
  EXPECT_EQ(cluster.BytesSent(), 2 * (10 + kFrameTrailerBytes));
  EXPECT_LT(cluster.SimTimeSeconds(), heavy_time);
  for (const auto& rs : cluster.stats()) {
    EXPECT_EQ(rs.supersteps, 1u);
    // The first Run's phase label is gone entirely.
    EXPECT_EQ(rs.phases.count("heavy"), 0u);
  }
}

TEST(Cluster, DeterministicSimTime) {
  auto run_once = [] {
    Cluster cluster(8);
    cluster.Run([&](Comm& comm) {
      comm.ChargeScanRecords(1000 * (comm.rank() + 1));
      std::vector<ByteBuffer> send(comm.size());
      for (int dst = 0; dst < comm.size(); ++dst) {
        send[dst] = ByteBuffer(static_cast<std::size_t>(100 * (dst + 1)));
      }
      comm.AllToAllv(std::move(send));
      comm.Barrier();
    });
    return cluster.SimTimeSeconds();
  };
  const double t1 = run_once();
  const double t2 = run_once();
  EXPECT_DOUBLE_EQ(t1, t2);
}

TEST(Wire, GetBytesAdvancesAndBoundsChecks) {
  ByteBuffer b;
  WirePut(b, std::uint32_t{0xAABBCCDD});
  WirePut(b, std::uint8_t{7});
  WireReader r(b);
  const auto view = r.GetBytes(4);
  EXPECT_EQ(view.size(), 4u);
  EXPECT_EQ(r.Get<std::uint8_t>(), 7);
  EXPECT_TRUE(r.AtEnd());
  WireReader r2(b);
  EXPECT_THROW(r2.GetBytes(6), SncubeError);
}

TEST(Cluster, BroadcastLargePayload) {
  Cluster cluster(4);
  cluster.Run([&](Comm& comm) {
    ByteBuffer msg;
    if (comm.rank() == 2) msg.assign(1 << 20, std::byte{0x5A});
    const ByteBuffer got = comm.Broadcast(2, std::move(msg));
    ASSERT_EQ(got.size(), 1u << 20);
    EXPECT_EQ(got.front(), std::byte{0x5A});
    EXPECT_EQ(got.back(), std::byte{0x5A});
  });
}

TEST(Cluster, GatherEmptyContributions) {
  Cluster cluster(3);
  cluster.Run([&](Comm& comm) {
    const auto got = comm.Gather(0, ByteBuffer{});
    if (comm.rank() == 0) {
      ASSERT_EQ(got.size(), 3u);
      for (const auto& b : got) EXPECT_TRUE(b.empty());
    }
  });
}

TEST(Cluster, InterleavedCollectiveKinds) {
  // Mixed collective sequence exercises board reuse across kinds.
  Cluster cluster(4);
  cluster.Run([&](Comm& comm) {
    for (int round = 0; round < 5; ++round) {
      const auto sum =
          comm.AllReduceSum(static_cast<std::uint64_t>(comm.rank() + round));
      EXPECT_EQ(sum, static_cast<std::uint64_t>(6 + 4 * round));
      ByteBuffer msg;
      if (comm.rank() == round % 4) WirePut(msg, round);
      const ByteBuffer got = comm.Broadcast(round % 4, std::move(msg));
      EXPECT_EQ(WireReader(got).Get<int>(), round);
      std::vector<ByteBuffer> send(comm.size());
      WirePut(send[(comm.rank() + 1) % comm.size()], comm.rank());
      auto recv = comm.AllToAllv(std::move(send));
      const int left = (comm.rank() + comm.size() - 1) % comm.size();
      EXPECT_EQ(WireReader(recv[left]).Get<int>(), left);
    }
  });
}

}  // namespace
}  // namespace sncube
