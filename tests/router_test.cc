// Deterministic tests for the resilient sharded serving tier: partitioning,
// the policy state machines (backoff, budget, breaker, shedder), and the
// router's retry/hedge/failover behavior under a ManualServeClock — no test
// here depends on wall-clock time.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/fault.h"
#include "query/engine.h"
#include "seqcube/seq_cube.h"
#include "obs/metrics_registry.h"
#include "serve/health.h"
#include "serve/metrics_bridge.h"
#include "serve/retry_policy.h"
#include "serve/router.h"
#include "serve/shard_set.h"
#include "serve/workload.h"

namespace sncube {
namespace {

CubeResult BuildCube(Schema* schema, std::uint64_t rows = 400) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.cardinalities = {8, 5, 3};
  spec.seed = 7;
  *schema = spec.MakeSchema();
  const Relation raw = GenerateSlice(spec, 1, 0);
  return SequentialCube(raw, *schema, AllViews(schema->dims()));
}

// ---------------------------------------------------------------------------
// Partitioning

TEST(ShardSetPartition, SlicesPartitionEveryViewByLeadingKey) {
  Schema schema;
  const CubeResult cube = BuildCube(&schema);
  const int n = 3;
  const auto slices = PartitionCubeForServing(cube, n);
  ASSERT_EQ(slices.size(), static_cast<std::size_t>(n));

  for (const auto& [id, vr] : cube.views) {
    std::size_t total = 0;
    for (int s = 0; s < n; ++s) {
      const auto it = slices[static_cast<std::size_t>(s)].views.find(id);
      ASSERT_NE(it, slices[static_cast<std::size_t>(s)].views.end());
      const ViewResult& sv = it->second;
      EXPECT_EQ(sv.selected, vr.selected);
      EXPECT_EQ(sv.order, vr.order);
      total += sv.rel.size();
      for (std::size_t r = 0; r < sv.rel.size(); ++r) {
        if (id.empty()) {
          EXPECT_EQ(s, 0) << "empty view rows must live on slice 0";
        } else {
          EXPECT_EQ(SliceOfLeadingKey(sv.rel.key(r, 0), n), s);
        }
      }
    }
    EXPECT_EQ(total, vr.rel.size()) << "view " << id.mask();
  }
}

TEST(ShardSetPartition, SliceOfLeadingKeyIsStable) {
  // Pinned values: partitioning and point-lookup routing must agree across
  // runs, platforms, and releases — a silent change would misroute lookups.
  EXPECT_EQ(SliceOfLeadingKey(0, 4), SliceOfLeadingKey(0, 4));
  for (Key v = 0; v < 64; ++v) {
    const int s = SliceOfLeadingKey(v, 5);
    EXPECT_GE(s, 0);
    EXPECT_LT(s, 5);
  }
}

// ---------------------------------------------------------------------------
// Policy state machines

TEST(BackoffPolicy, CappedExponential) {
  BackoffPolicy b;
  b.base_us = 1000;
  b.cap_us = 8000;
  EXPECT_EQ(b.DelayMicros(0), 1000u);
  EXPECT_EQ(b.DelayMicros(1), 2000u);
  EXPECT_EQ(b.DelayMicros(2), 4000u);
  EXPECT_EQ(b.DelayMicros(3), 8000u);
  EXPECT_EQ(b.DelayMicros(10), 8000u);  // capped, no overflow
}

TEST(RetryBudget, StartsFullThenTracksRequestVolume) {
  RetryBudget budget(0.5, 2.0);
  // Starts at burst: early failures may retry.
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_TRUE(budget.TrySpend());
  EXPECT_FALSE(budget.TrySpend());  // exhausted
  budget.OnRequest();               // +0.5
  EXPECT_FALSE(budget.TrySpend());  // 0.5 < 1
  budget.OnRequest();
  EXPECT_TRUE(budget.TrySpend());  // 1.0 available
  for (int i = 0; i < 100; ++i) budget.OnRequest();
  EXPECT_DOUBLE_EQ(budget.tokens(), 2.0);  // capped at burst
}

TEST(CircuitBreaker, OpensAfterThresholdWithinWindow) {
  BreakerOptions o;
  o.failure_threshold = 3;
  o.window_us = 1000;
  o.cooldown_us = 500;
  o.half_open_probes = 2;
  CircuitBreaker b(o);

  EXPECT_TRUE(b.AllowRequest(0));
  b.OnFailure(0);
  b.OnFailure(100);
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.OnFailure(200);  // third within the window
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.opened_count(), 1u);
  EXPECT_FALSE(b.AllowRequest(300));  // cooling down
  EXPECT_FALSE(b.AllowRequest(699));
  // Cooldown elapsed: the next Allow becomes a half-open probe.
  EXPECT_TRUE(b.AllowRequest(700));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  EXPECT_EQ(b.half_opened_count(), 1u);
  EXPECT_TRUE(b.AllowRequest(710));    // second probe slot
  EXPECT_FALSE(b.AllowRequest(720));   // probe slots exhausted
  b.OnSuccess(730);
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
  b.OnSuccess(740);  // second consecutive success closes
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  EXPECT_EQ(b.closed_count(), 1u);
}

TEST(CircuitBreaker, HalfOpenFailureReopensAndRestartsCooldown) {
  BreakerOptions o;
  o.failure_threshold = 1;
  o.cooldown_us = 500;
  CircuitBreaker b(o);
  b.OnFailure(0);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_TRUE(b.AllowRequest(500));  // half-open probe
  b.OnFailure(510);
  EXPECT_EQ(b.state(), BreakerState::kOpen);
  EXPECT_EQ(b.opened_count(), 2u);
  EXPECT_FALSE(b.AllowRequest(900));   // cooldown restarted at 510
  EXPECT_TRUE(b.AllowRequest(1010));
  EXPECT_EQ(b.state(), BreakerState::kHalfOpen);
}

TEST(CircuitBreaker, SlidingWindowAgesOutOldFailures) {
  BreakerOptions o;
  o.failure_threshold = 2;
  o.window_us = 1000;
  CircuitBreaker b(o);
  b.OnFailure(0);
  b.OnFailure(2000);  // the t=0 failure aged out
  EXPECT_EQ(b.state(), BreakerState::kClosed);
  b.OnFailure(2100);  // two within the window now
  EXPECT_EQ(b.state(), BreakerState::kOpen);
}

TEST(LoadShedder, LevelsFollowPressureInWindow) {
  LoadShedder::Options o;
  o.window = 8;
  o.shed_scatter_at = 3;
  o.shed_point_at = 5;
  LoadShedder s(o);
  EXPECT_EQ(s.Level(), 0);
  for (int i = 0; i < 3; ++i) s.Note(true);
  EXPECT_EQ(s.Level(), 1);
  for (int i = 0; i < 2; ++i) s.Note(true);
  EXPECT_EQ(s.Level(), 2);
  // Healthy outcomes push the pressure back out of the window.
  for (int i = 0; i < 8; ++i) s.Note(false);
  EXPECT_EQ(s.Level(), 0);
}

// ---------------------------------------------------------------------------
// Engine from_view pinning (the scatter correctness prerequisite)

TEST(QueryEngineFromView, PinsTheAnsweringView) {
  Schema schema;
  const CubeResult cube = BuildCube(&schema);
  CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({1});
  q.from_view = ViewId::Full(schema.dims());
  const QueryAnswer a = engine.Execute(q);
  EXPECT_EQ(a.answered_from, ViewId::Full(schema.dims()));

  Query bare = q;
  bare.from_view.reset();
  EXPECT_EQ(engine.Execute(bare).rel, a.rel)
      << "a covering pin changes the scan, never the answer";
}

TEST(QueryEngineFromView, RejectsNonCoveringPin) {
  Schema schema;
  const CubeResult cube = BuildCube(&schema);
  CubeQueryEngine engine(cube);
  Query q;
  q.group_by = ViewId::FromDims({0});
  q.from_view = ViewId::FromDims({1});  // does not contain dim 0
  EXPECT_THROW(engine.Execute(q), SncubeError);
}

// ---------------------------------------------------------------------------
// Router

struct Serve {
  Schema schema;
  CubeResult cube;
  std::unique_ptr<CubeQueryEngine> golden;
  ManualServeClock clock;
  std::unique_ptr<ShardSet> shards;
  std::unique_ptr<Router> router;
};

std::unique_ptr<Serve> MakeServe(int n, const std::string& plan_spec,
                                 RouterOptions ropts = RouterOptions()) {
  auto s = std::make_unique<Serve>();
  s->cube = BuildCube(&s->schema);
  s->golden = std::make_unique<CubeQueryEngine>(s->cube);
  ShardSetOptions sopts;
  sopts.shards = n;
  sopts.clock = &s->clock;
  sopts.server.workers = 2;
  s->shards = std::make_unique<ShardSet>(s->cube, sopts,
                                         FaultPlan::Parse(plan_spec));
  s->router = std::make_unique<Router>(*s->shards, ropts);
  return s;
}

Query ScatterQuery() {
  Query q;
  q.group_by = ViewId::FromDims({1, 2});
  return q;
}

// A filter on dim 0 pins the routed view's leading dimension: the needed
// set {0,1} routes to a view whose leading dim is 0, so the answer lives on
// exactly one slice.
Query PointQuery(Key value = 3) {
  Query q;
  q.group_by = ViewId::FromDims({1});
  q.filters = {{.dim = 0, .value = value}};
  return q;
}

void ExpectCorrect(const Serve& s, const Query& q, const RouterResult& r) {
  ASSERT_EQ(r.outcome, RouterOutcome::kOk) << RouterOutcomeName(r.outcome);
  ASSERT_NE(r.answer, nullptr);
  Query bare = q;
  bare.from_view.reset();
  EXPECT_EQ(r.answer->rel, s.golden->Execute(bare).rel);
}

TEST(Router, FaultFreeAnswersMatchGoldenEngine) {
  auto s = MakeServe(3, "seed:1");
  WorkloadSpec wl;
  wl.pool_size = 48;
  wl.seed = 11;
  const QueryMix mix(s->cube, s->schema, wl);
  Rng rng(5);
  for (int i = 0; i < 60; ++i) {
    const Query q = mix.Sample(rng);
    ExpectCorrect(*s, q, s->router->Execute(q));
  }
  const RouterStatsSnapshot st = s->router->Stats();
  EXPECT_EQ(st.requests, 60u);
  EXPECT_EQ(st.ok, 60u);
  EXPECT_GT(st.point_queries + st.scatter_queries, 0u);
}

TEST(Router, PointQueryTouchesOneSliceScatterFansOut) {
  auto s = MakeServe(4, "seed:1");
  RouterResult p = s->router->Execute(PointQuery());
  EXPECT_FALSE(p.scatter);
  EXPECT_EQ(p.tries, 1);
  ExpectCorrect(*s, PointQuery(), p);

  RouterResult sc = s->router->Execute(ScatterQuery());
  EXPECT_TRUE(sc.scatter);
  EXPECT_EQ(sc.tries, 4);  // one per slice, no faults
  ExpectCorrect(*s, ScatterQuery(), sc);
}

TEST(Router, TopKScatterIsReappliedAfterMerge) {
  auto s = MakeServe(3, "seed:1");
  Query q = ScatterQuery();
  q.top_k = 5;
  ExpectCorrect(*s, q, s->router->Execute(q));
}

TEST(Router, DeadShardFailsOverToReplicaAndBreakerOpens) {
  RouterOptions ropts;
  ropts.probe_every = 0;  // isolate: only request traffic drives health
  ropts.breaker.failure_threshold = 3;
  ropts.retry_budget_ratio = 1.0;  // retries always affordable here
  auto s = MakeServe(3, "shardkill:0:0;seed:1", ropts);

  for (int i = 0; i < 20; ++i) {
    const Query q = ScatterQuery();
    ExpectCorrect(*s, q, s->router->Execute(q));
  }
  const RouterStatsSnapshot st = s->router->Stats();
  EXPECT_EQ(st.ok, 20u) << "every answer served from replicas";
  EXPECT_GT(st.retries, 0u);
  EXPECT_GE(st.shard_health[0].breaker_opened, 1u);
  EXPECT_EQ(s->router->ShardBreakerState(0), BreakerState::kOpen);
  EXPECT_EQ(st.shard_health[1].failures, 0u);
  EXPECT_EQ(st.shard_health[2].failures, 0u);
}

TEST(Router, BreakerHalfOpensAndClosesAfterRecovery) {
  RouterOptions ropts;
  ropts.probe_every = 4;
  ropts.breaker.failure_threshold = 3;
  ropts.breaker.cooldown_us = 1000;
  ropts.retry_budget_ratio = 1.0;
  auto s = MakeServe(2, "shardkill:0:0-20;seed:1", ropts);

  for (int i = 0; i < 60; ++i) {
    s->clock.Advance(200);  // inter-arrival gap lets the cooldown elapse
    const Query q = ScatterQuery();
    ExpectCorrect(*s, q, s->router->Execute(q));
  }
  const RouterStatsSnapshot st = s->router->Stats();
  EXPECT_GE(st.shard_health[0].breaker_opened, 1u);
  EXPECT_GE(st.shard_health[0].breaker_half_opened, 1u);
  EXPECT_GE(st.shard_health[0].breaker_closed, 1u);
  EXPECT_EQ(s->router->ShardBreakerState(0), BreakerState::kClosed);
  EXPECT_GT(st.probes, 0u);
}

TEST(Router, SlowShardTriggersHedgingAndHedgeWins) {
  RouterOptions ropts;
  ropts.hedge_delay_us = 400;
  ropts.per_try_us = 5000;
  ropts.probe_every = 0;
  auto s = MakeServe(3, "shardslow:1:0:3;seed:1", ropts);

  for (int i = 0; i < 10; ++i) {
    const Query q = ScatterQuery();
    ExpectCorrect(*s, q, s->router->Execute(q));
  }
  const RouterStatsSnapshot st = s->router->Stats();
  EXPECT_GT(st.hedges, 0u);
  EXPECT_GT(st.hedge_wins, 0u);
  EXPECT_EQ(st.ok, 10u);
}

TEST(Router, PerTryDeadlineDiscardsLateAnswersAndRetries) {
  RouterOptions ropts;
  ropts.per_try_us = 1000;  // 8x slowdown -> 1400us virtual, over deadline
  ropts.probe_every = 0;
  ropts.retry_budget_ratio = 1.0;
  auto s = MakeServe(3, "shardslow:0:0:8;seed:1", ropts);

  for (int i = 0; i < 10; ++i) {
    const Query q = ScatterQuery();
    ExpectCorrect(*s, q, s->router->Execute(q));
  }
  const RouterStatsSnapshot st = s->router->Stats();
  EXPECT_EQ(st.ok, 10u) << "late answers are discarded, retries recover";
  EXPECT_GT(st.retries, 0u);
  EXPECT_GT(st.shard_health[0].failures, 0u);
}

TEST(Router, TotalOutageShedsScatterBeforePoints) {
  RouterOptions ropts;
  ropts.probe_every = 0;
  ropts.shedder.window = 32;
  ropts.shedder.shed_scatter_at = 4;
  ropts.shedder.shed_point_at = 12;
  ropts.max_tries = 2;
  auto s = MakeServe(2, "shardkill:0:0;shardkill:1:0;seed:1", ropts);

  std::uint64_t first_scatter_shed = 0;
  std::uint64_t first_point_shed = 0;
  for (int i = 0; i < 60; ++i) {
    const Query q = (i % 2 == 0) ? ScatterQuery() : PointQuery();
    const RouterResult r = s->router->Execute(q);
    EXPECT_NE(r.outcome, RouterOutcome::kOk) << "no shard could answer";
    EXPECT_EQ(r.answer, nullptr);
    if (r.outcome == RouterOutcome::kShed) {
      auto& first = q.filters.empty() ? first_scatter_shed : first_point_shed;
      if (first == 0) first = static_cast<std::uint64_t>(i) + 1;
    }
  }
  const RouterStatsSnapshot st = s->router->Stats();
  EXPECT_EQ(st.ok, 0u);
  EXPECT_GT(st.unavailable, 0u);
  EXPECT_GT(st.shed, 0u);
  ASSERT_GT(first_scatter_shed, 0u);
  if (first_point_shed != 0) {
    EXPECT_LT(first_scatter_shed, first_point_shed)
        << "scatter rollups shed strictly before point lookups";
  }
}

// The ISSUE acceptance scenario: one shard killed mid-run, another slowed,
// zero wrong answers, breaker opens in-window and recovers after it.
TEST(Router, AcceptanceKillOneSlowAnotherZeroWrongAnswers) {
  const std::string plan = "shardkill:1:10-60;shardslow:2:0-120:4;seed:5";
  RouterOptions ropts;
  ropts.breaker.cooldown_us = 2000;
  ropts.probe_every = 8;
  ropts.hedge_delay_us = 500;
  ropts.retry_budget_ratio = 0.5;
  auto s = MakeServe(4, plan, ropts);

  WorkloadSpec wl;
  wl.pool_size = 64;
  wl.seed = 23;
  const QueryMix mix(s->cube, s->schema, wl);
  Rng rng(9);
  std::uint64_t wrong = 0;
  std::uint64_t served = 0;
  for (int i = 0; i < 150; ++i) {
    s->clock.Advance(200);
    const Query q = mix.Sample(rng);
    const RouterResult r = s->router->Execute(q);
    if (r.outcome == RouterOutcome::kOk) {
      ++served;
      Query bare = q;
      if (!(r.answer != nullptr &&
            r.answer->rel == s->golden->Execute(bare).rel)) {
        ++wrong;
      }
    }
    // Every non-OK outcome is typed by construction of the enum.
  }
  EXPECT_EQ(wrong, 0u) << "the one unforgivable outcome";
  EXPECT_GT(served, 100u) << "replication keeps most traffic served";
  const RouterStatsSnapshot st = s->router->Stats();
  EXPECT_GE(st.shard_health[1].breaker_opened, 1u)
      << "breaker opened during the kill window";
  EXPECT_GE(st.shard_health[1].breaker_half_opened, 1u)
      << "breaker probed after recovery";
  EXPECT_EQ(s->router->ShardBreakerState(1), BreakerState::kClosed);
}

TEST(Router, FaultedRunIsDeterministicUnderManualClock) {
  const std::string plan = "shardkill:1:10-60;shardslow:2:0-120:4;seed:5";
  const auto run = [&] {
    RouterOptions ropts;
    ropts.breaker.cooldown_us = 2000;
    ropts.probe_every = 8;
    ropts.hedge_delay_us = 500;
    auto s = MakeServe(4, plan, ropts);
    WorkloadSpec wl;
    wl.pool_size = 64;
    wl.seed = 23;
    const QueryMix mix(s->cube, s->schema, wl);
    Rng rng(9);
    for (int i = 0; i < 120; ++i) {
      s->clock.Advance(200);
      s->router->Execute(mix.Sample(rng));
    }
    return s->router->Stats().ToJson();
  };
  EXPECT_EQ(run(), run());
}

// Restart semantics: when a kill window closes, the shard's hosted caches
// are invalidated before serving resumes (cold-cache restart).
TEST(Router, ShardRestartInvalidatesItsCaches) {
  RouterOptions ropts;
  ropts.breaker.cooldown_us = 500;
  ropts.probe_every = 4;
  ropts.retry_budget_ratio = 1.0;
  auto s = MakeServe(2, "shardkill:1:5-10;seed:1", ropts);

  for (int i = 0; i < 30; ++i) {
    s->clock.Advance(200);
    const Query q = ScatterQuery();
    const RouterResult r = s->router->Execute(q);
    if (r.outcome == RouterOutcome::kOk) ExpectCorrect(*s, q, r);
  }
  // Shard 1's primary copy of slice 1 was warmed before the kill at seq 5,
  // so the restart at seq 10 must have dropped those entries. (Its hosted
  // replica of slice 0 never saw traffic — shard 0 stayed up — so clearing
  // that empty cache invalidates nothing.)
  EXPECT_GT(s->shards->primary_server(1).Stats().cache.invalidations, 0u);
  // Shard 0 never restarted: nothing invalidated there.
  EXPECT_EQ(s->shards->primary_server(0).Stats().cache.invalidations, 0u);
}

TEST(Router, MetricsBridgeExportsRouterAndShardCounters) {
  RouterOptions ropts;
  ropts.probe_every = 0;
  ropts.retry_budget_ratio = 1.0;
  auto s = MakeServe(2, "shardkill:0:0;seed:1", ropts);
  for (int i = 0; i < 12; ++i) s->router->Execute(ScatterQuery());

  obs::MetricsRegistry reg;
  AbsorbRouterStats(reg, *s->router);
  AbsorbServerStats(reg, s->shards->primary_server(1));
  EXPECT_EQ(reg.GetCounter("serve.router.requests").value(), 12u);
  EXPECT_EQ(reg.GetCounter("serve.router.ok").value(), 12u);
  EXPECT_GT(reg.GetCounter("serve.router.retries").value(), 0u);
  EXPECT_GE(reg.GetCounter("serve.router.breaker.opened").value(), 1u);
  EXPECT_GE(reg.GetGauge("serve.router.breaker.open_shards").value(), 1.0);
  EXPECT_GT(reg.GetCounter("serve.completed").value(), 0u);
  // The JSON dump carries both families side by side.
  const std::string json = reg.ToJson();
  EXPECT_NE(json.find("serve.router.ok_latency_us"), std::string::npos);
  EXPECT_NE(json.find("serve.cache.invalidations"), std::string::npos);
  EXPECT_NE(json.find("serve.deadline_exceeded_in_flight"), std::string::npos);
}

}  // namespace
}  // namespace sncube
