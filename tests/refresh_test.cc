// Online refresh tests (DESIGN.md §14): delta merge correctness, snapshot
// store durability + recovery, the ShardSet epoch surface, and THE
// crash-safety acceptance matrix — the refresh coordinator killed at every
// phase of the two-phase swap, for p ∈ {2, 4}, must leave a restarted
// server serving a cube byte-identical to either the pre-refresh or the
// post-refresh golden cube. Never a blend, never a half-installed epoch.
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "data/generator.h"
#include "io/disk.h"
#include "lattice/lattice.h"
#include "net/fault.h"
#include "query/engine.h"
#include "refresh/delta.h"
#include "refresh/refresh.h"
#include "refresh/snapshot.h"
#include "relation/aggregate.h"
#include "relation/sort.h"
#include "seqcube/seq_cube.h"
#include "serve/shard_set.h"

namespace sncube {
namespace {

std::filesystem::path FreshDir(const std::string& tag) {
  const auto dir = std::filesystem::temp_directory_path() /
                   ("sncube_refresh_" + tag + "_" + std::to_string(::getpid()));
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

DatasetSpec BaseSpec() {
  DatasetSpec spec;
  spec.rows = 300;
  spec.cardinalities = {6, 4, 3};
  spec.seed = 17;
  return spec;
}

DatasetSpec DeltaSpec() {
  DatasetSpec spec = BaseSpec();
  spec.rows = 90;
  spec.seed = 91;  // disjoint stream: genuinely new facts
  return spec;
}

// Byte-identity over cubes: same view set, orders, flags, rows.
void ExpectCubesIdentical(const CubeResult& got, const CubeResult& want,
                          const std::string& what) {
  ASSERT_EQ(got.views.size(), want.views.size()) << what;
  auto ig = got.views.begin();
  for (const auto& [id, vw] : want.views) {
    const auto& [idg, vg] = *ig++;
    ASSERT_EQ(idg, id) << what;
    EXPECT_EQ(vg.order, vw.order) << what << " view " << id.mask();
    EXPECT_EQ(vg.selected, vw.selected) << what << " view " << id.mask();
    EXPECT_TRUE(vg.rel == vw.rel)
        << what << " view " << id.mask() << ": " << vg.rel.size() << " vs "
        << vw.rel.size() << " rows";
  }
}

bool CubesIdentical(const CubeResult& a, const CubeResult& b) {
  if (a.views.size() != b.views.size()) return false;
  auto ia = a.views.begin();
  for (const auto& [id, vb] : b.views) {
    const auto& [ida, va] = *ia++;
    if (ida != id || va.order != vb.order || va.selected != vb.selected ||
        !(va.rel == vb.rel)) {
      return false;
    }
  }
  return true;
}

// ---------------------------------------------------------------------------
// Delta merge
// ---------------------------------------------------------------------------

TEST(DeltaMerge, MergeAggregateByOrderMergesAndCombines) {
  // Rows sorted by column order {1, 0} — the permuted comparator is the
  // whole point (MergeSortedAggregate only does all-ascending).
  Relation a(2), b(2);
  const std::vector<int> cols = {1, 0};
  // a sorted by (col1, col0): (…,0), (…,1), (…,2)
  {
    const Key r0[] = {5, 0};
    const Key r1[] = {1, 1};
    const Key r2[] = {2, 1};
    a.Append(r0, 10);
    a.Append(r1, 20);
    a.Append(r2, 30);
  }
  {
    const Key r0[] = {2, 1};  // equal key with a's r2 → combines
    const Key r1[] = {0, 7};  // new key, sorts last
    b.Append(r0, 5);
    b.Append(r1, 1);
  }
  const Relation sum = MergeAggregateByOrder(a, b, cols, AggFn::kSum);
  ASSERT_EQ(sum.size(), 4u);
  EXPECT_EQ(sum.RowKeys(0)[0], 5u);
  EXPECT_EQ(sum.measure(0), 10);
  EXPECT_EQ(sum.RowKeys(2)[0], 2u);
  EXPECT_EQ(sum.measure(2), 35);  // 30 + 5 combined
  EXPECT_EQ(sum.RowKeys(3)[1], 7u);
  EXPECT_EQ(sum.measure(3), 1);

  const Relation mn = MergeAggregateByOrder(a, b, cols, AggFn::kMin);
  EXPECT_EQ(mn.measure(2), 5);
  const Relation mx = MergeAggregateByOrder(a, b, cols, AggFn::kMax);
  EXPECT_EQ(mx.measure(2), 30);
}

TEST(DeltaMerge, RefreshedCubeEqualsFullRebuildOnEveryView) {
  // The distributivity contract end to end: cube(base) merged with
  // cube(delta) must hold exactly the same aggregates as cube(base ∪ delta),
  // view by view (row ORDER may differ — the full rebuild picks its own
  // pipeline orders — so compare in canonical sort).
  const DatasetSpec spec = BaseSpec();
  const Schema schema = spec.MakeSchema();
  const Relation base_rel = GenerateSlice(spec, 1, 0);
  const Relation delta_rel = GenerateSlice(DeltaSpec(), 1, 0);
  const CubeResult base = SequentialCube(base_rel, schema, AllViews(schema.dims()));

  const CubeResult merged = MergeDeltaCube(
      base, ComputeDeltaCube(delta_rel, schema,
                             AffectedViews(base, delta_rel)));

  Relation both = base_rel;
  both.Concat(Relation(delta_rel));
  const CubeResult full = SequentialCube(both, schema, AllViews(schema.dims()));

  ASSERT_EQ(merged.views.size(), full.views.size());
  for (const auto& [id, vm] : merged.views) {
    const auto it = full.views.find(id);
    ASSERT_NE(it, full.views.end());
    const auto canon = IdentityOrder(vm.rel.width());
    EXPECT_TRUE(SortRelation(vm.rel, canon) ==
                SortRelation(it->second.rel, canon))
        << "view " << id.mask();
    // Merged views keep the BASE view's sort order: drop-in for consumers.
    EXPECT_EQ(vm.order, base.views.at(id).order);
  }
}

TEST(DeltaMerge, EmptyDeltaIsByteIdenticalPassThrough) {
  const DatasetSpec spec = BaseSpec();
  const Schema schema = spec.MakeSchema();
  const CubeResult base =
      SequentialCube(GenerateSlice(spec, 1, 0), schema, AllViews(schema.dims()));
  const Relation empty_delta(schema.dims());
  EXPECT_TRUE(AffectedViews(base, empty_delta).empty());
  const CubeResult merged = MergeDeltaCube(
      base, ComputeDeltaCube(empty_delta, schema, {}));
  ExpectCubesIdentical(merged, base, "empty-delta merge");
}

// ---------------------------------------------------------------------------
// Snapshot store
// ---------------------------------------------------------------------------

CubeResult SmallCube(std::uint64_t seed) {
  DatasetSpec spec = BaseSpec();
  spec.seed = seed;
  const Schema schema = spec.MakeSchema();
  return SequentialCube(GenerateSlice(spec, 1, 0), schema,
                        AllViews(schema.dims()));
}

TEST(SnapshotStore, WriteCommitLoadRoundTripsByteIdentical) {
  const auto dir = FreshDir("roundtrip");
  DiskModel disk;
  SnapshotStore store(dir.string(), disk);
  const CubeResult cube = SmallCube(17);
  store.WriteEpoch(1, cube);
  store.AppendCommit(1);
  ExpectCubesIdentical(store.LoadEpoch(1), cube, "LoadEpoch");

  const RecoveredSnapshot rec = store.Recover();
  ASSERT_TRUE(rec.has_cube);
  EXPECT_EQ(rec.epoch, 1u);
  EXPECT_TRUE(rec.quarantined.empty());
  ExpectCubesIdentical(rec.cube, cube, "Recover");
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStore, RecoverQuarantinesUncommittedEpochAndServesCommitted) {
  const auto dir = FreshDir("uncommitted");
  DiskModel disk;
  SnapshotStore store(dir.string(), disk);
  const CubeResult old_cube = SmallCube(17);
  const CubeResult new_cube = SmallCube(18);
  store.WriteEpoch(1, old_cube);
  store.AppendCommit(1);
  // Epoch 2 prepared (files + record) but never committed: the crash window
  // between "prepare" and "commit".
  store.WriteEpoch(2, new_cube);
  store.AppendCommitShard(2, 0);

  const RecoveredSnapshot rec = store.Recover();
  ASSERT_TRUE(rec.has_cube);
  EXPECT_EQ(rec.epoch, 1u);
  ExpectCubesIdentical(rec.cube, old_cube, "Recover after half-install");
  // The half-installed directory is quarantined, not deleted and not live.
  ASSERT_EQ(rec.quarantined.size(), 1u);
  EXPECT_NE(rec.quarantined[0].find("epoch_2.quarantine"), std::string::npos);
  EXPECT_FALSE(std::filesystem::exists(dir / "epoch_2"));
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStore, RecoverFallsBackPastCorruptCommittedEpoch) {
  const auto dir = FreshDir("corrupt");
  DiskModel disk;
  SnapshotStore store(dir.string(), disk);
  const CubeResult old_cube = SmallCube(17);
  const CubeResult new_cube = SmallCube(18);
  store.WriteEpoch(1, old_cube);
  store.AppendCommit(1);
  store.WriteEpoch(2, new_cube);
  store.AppendCommit(2);

  // Silent single-byte corruption of one epoch-2 view frame after commit —
  // the CRC trailer must catch it and recovery must fall back to epoch 1.
  const auto victim = dir / "epoch_2" / "v00001.snap";
  ASSERT_TRUE(std::filesystem::exists(victim));
  {
    std::fstream f(victim, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(12);
    char byte = 0;
    f.seekg(12);
    f.read(&byte, 1);
    byte = static_cast<char>(byte ^ 0x40);
    f.seekp(12);
    f.write(&byte, 1);
  }

  const RecoveredSnapshot rec = store.Recover();
  ASSERT_TRUE(rec.has_cube);
  EXPECT_EQ(rec.epoch, 1u);
  ExpectCubesIdentical(rec.cube, old_cube, "fallback");
  bool saw_corrupt = false;
  for (const auto& q : rec.quarantined) {
    if (q.find("v00001.snap.corrupt") != std::string::npos) saw_corrupt = true;
  }
  EXPECT_TRUE(saw_corrupt);
  std::filesystem::remove_all(dir);
}

TEST(SnapshotStore, TornManifestTailEndsDurablePrefix) {
  const auto dir = FreshDir("torntail");
  DiskModel disk;
  SnapshotStore store(dir.string(), disk);
  const CubeResult cube = SmallCube(17);
  store.WriteEpoch(1, cube);
  store.AppendCommit(1);
  // A torn append: half a record with no valid seal. Everything before it
  // must stay durable; the junk must not be parsed as a record.
  {
    std::ofstream f(dir / "MANIFEST", std::ios::app);
    f << "commit 99";  // no CRC, no newline discipline
  }
  const RecoveredSnapshot rec = store.Recover();
  ASSERT_TRUE(rec.has_cube);
  EXPECT_EQ(rec.epoch, 1u);
  std::filesystem::remove_all(dir);
}

// ---------------------------------------------------------------------------
// ShardSet epoch surface
// ---------------------------------------------------------------------------

TEST(ShardSetEpochs, TwoPhaseSwapServesPinnedEpochThenRetires) {
  const CubeResult old_cube = SmallCube(17);
  auto new_cube = std::make_shared<const CubeResult>(SmallCube(18));
  auto third = std::make_shared<const CubeResult>(SmallCube(19));

  ManualServeClock clock;
  ShardSetOptions opts;
  opts.shards = 2;
  opts.clock = &clock;
  opts.server.workers = 1;
  opts.server.deadline = std::chrono::microseconds(0);
  ShardSet set(old_cube, opts);
  EXPECT_EQ(set.serving_epoch(), 0u);

  Query q;
  q.group_by = ViewId(0);  // the "all" row: lives on slice 0 of every epoch
  q.from_view = ViewId(0);

  set.PrepareEpoch(1, new_cube);
  EXPECT_EQ(set.serving_epoch(), 0u);  // prepared ≠ serving
  EXPECT_EQ(set.HostedEpochs(), (std::vector<std::uint64_t>{0, 1}));
  set.CommitShard(1, 0);
  set.CommitShard(1, 1);
  EXPECT_EQ(set.serving_epoch(), 0u);  // committed ≠ serving either

  // A request pinned to epoch 0 answers from the OLD cube mid-swap.
  const TryResult r0 = set.ExecuteOnShard(0, 0, q, 0, 0);
  ASSERT_EQ(r0.outcome, TryOutcome::kOk);
  EXPECT_TRUE(r0.answer->rel ==
              old_cube.views.at(ViewId(0)).rel);

  set.FinalizeEpoch(1);
  EXPECT_EQ(set.serving_epoch(), 1u);
  // Epoch 0 is retained for in-flight drains until the NEXT finalize.
  EXPECT_EQ(set.HostedEpochs(), (std::vector<std::uint64_t>{0, 1}));
  const TryResult r1 = set.ExecuteOnShard(0, 0, q, 1, 1);
  ASSERT_EQ(r1.outcome, TryOutcome::kOk);
  EXPECT_TRUE(r1.answer->rel == new_cube->views.at(ViewId(0)).rel);

  set.PrepareEpoch(2, third);
  set.CommitShard(2, 0);
  set.CommitShard(2, 1);
  set.FinalizeEpoch(2);
  EXPECT_EQ(set.HostedEpochs(), (std::vector<std::uint64_t>{1, 2}));
  // Epoch 0 has retired: a long-stalled request fails TYPED, it is never
  // answered from a different snapshot.
  const TryResult gone = set.ExecuteOnShard(0, 0, q, 2, 0);
  EXPECT_EQ(gone.outcome, TryOutcome::kEpochGone);
  EXPECT_EQ(gone.answer, nullptr);
  set.Shutdown();
}

TEST(ShardSetEpochs, AbandonEpochDropsPreparedState) {
  const CubeResult old_cube = SmallCube(17);
  auto new_cube = std::make_shared<const CubeResult>(SmallCube(18));
  ManualServeClock clock;
  ShardSetOptions opts;
  opts.shards = 2;
  opts.clock = &clock;
  opts.server.workers = 1;
  opts.server.deadline = std::chrono::microseconds(0);
  ShardSet set(old_cube, opts);
  set.PrepareEpoch(1, new_cube);
  EXPECT_EQ(set.HostedEpochs(), (std::vector<std::uint64_t>{0, 1}));
  set.AbandonEpoch(1);
  set.AbandonEpoch(1);  // idempotent
  EXPECT_EQ(set.HostedEpochs(), (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(set.serving_epoch(), 0u);
  set.Shutdown();
}

// ---------------------------------------------------------------------------
// Crash-safety acceptance matrix
// ---------------------------------------------------------------------------

struct RefreshRig {
  Schema schema;
  CubeResult pre;    // golden old
  CubeResult post;   // golden new
  Relation delta;

  RefreshRig() {
    const DatasetSpec spec = BaseSpec();
    schema = spec.MakeSchema();
    pre = SequentialCube(GenerateSlice(spec, 1, 0), schema,
                         AllViews(schema.dims()));
    delta = GenerateSlice(DeltaSpec(), 1, 0);
    post = MergeDeltaCube(
        pre, ComputeDeltaCube(delta, schema, AffectedViews(pre, delta)));
  }
};

TEST(RefreshCrashSafety, KilledAtEveryPhaseRecoversToOldOrNewGolden) {
  const RefreshRig rig;
  for (const int shards : {2, 4}) {
    // Phase 3 (between per-shard commits) is entered shards-1 times; the
    // kill fires on the FIRST entry — exactly one shard committed.
    for (int phase = 0; phase <= 5; ++phase) {
      SCOPED_TRACE("shards=" + std::to_string(shards) +
                   " refreshkill:" + std::to_string(phase));
      const auto dir = FreshDir("kill_p" + std::to_string(shards) + "_" +
                                std::to_string(phase));
      FaultInjector injector(
          FaultPlan::Parse("refreshkill:" + std::to_string(phase) +
                           ";seed:1"),
          /*rank=*/0);

      ManualServeClock clock;
      ShardSetOptions sopts;
      sopts.shards = shards;
      sopts.clock = &clock;
      sopts.server.workers = 1;
      sopts.server.deadline = std::chrono::microseconds(0);
      ShardSet set(rig.pre, sopts);

      RefreshOptions ropts;
      ropts.dir = dir.string();
      ropts.injector = &injector;
      int phases_seen = -1;
      ropts.on_phase = [&](int p) { phases_seen = p; };
      RefreshCoordinator coordinator(
          set,
          std::shared_ptr<const CubeResult>(&rig.pre,
                                            [](const CubeResult*) {}),
          rig.schema, ropts);
      EXPECT_THROW(coordinator.Refresh(rig.delta), InjectedFaultError);
      EXPECT_EQ(phases_seen, phase - 1);  // died ON entry, before the hook
      set.Shutdown();

      // Simulated restart: a fresh process recovers from the store alone
      // and falls back to the pre-refresh base when nothing committed.
      DiskModel disk;
      SnapshotStore store(dir.string(), disk);
      const RecoveredSnapshot rec = store.Recover();
      const CubeResult& served = rec.has_cube ? rec.cube : rig.pre;

      if (phase <= 4) {
        // No commit record sealed: the old cube, bit for bit.
        EXPECT_FALSE(rec.has_cube);
        ExpectCubesIdentical(served, rig.pre, "recovered (old)");
      } else {
        // Commit sealed before phase 5: the new cube, bit for bit.
        ASSERT_TRUE(rec.has_cube);
        EXPECT_EQ(rec.epoch, 1u);
        ExpectCubesIdentical(served, rig.post, "recovered (new)");
      }
      // Never a blend, and every partially written epoch is quarantined,
      // not serveable.
      EXPECT_TRUE(CubesIdentical(served, rig.pre) ||
                  CubesIdentical(served, rig.post));
      EXPECT_FALSE(std::filesystem::exists(dir / "epoch_1") &&
                   !rec.has_cube);

      // The recovered cube actually serves: spot-check one query against
      // the matching golden engine.
      CubeQueryEngine engine(served);
      Query q;
      q.group_by = ViewId(1);
      const QueryAnswer a = engine.Execute(q);
      CubeQueryEngine golden(phase <= 4 ? rig.pre : rig.post);
      EXPECT_TRUE(a.rel == golden.Execute(q).rel);
      std::filesystem::remove_all(dir);
    }
  }
}

TEST(RefreshCrashSafety, CompletedRefreshInstallsDurableNewEpoch) {
  const RefreshRig rig;
  const auto dir = FreshDir("complete");
  ManualServeClock clock;
  ShardSetOptions sopts;
  sopts.shards = 2;
  sopts.clock = &clock;
  sopts.server.workers = 1;
  sopts.server.deadline = std::chrono::microseconds(0);
  ShardSet set(rig.pre, sopts);

  RefreshOptions ropts;
  ropts.dir = dir.string();
  RefreshCoordinator coordinator(
      set,
      std::shared_ptr<const CubeResult>(&rig.pre, [](const CubeResult*) {}),
      rig.schema, ropts);
  EXPECT_EQ(coordinator.Refresh(rig.delta), 1u);
  EXPECT_EQ(set.serving_epoch(), 1u);
  ExpectCubesIdentical(*coordinator.current(), rig.post, "installed");

  // Durable state agrees with what is being served.
  DiskModel disk;
  SnapshotStore store(dir.string(), disk);
  const RecoveredSnapshot rec = store.Recover();
  ASSERT_TRUE(rec.has_cube);
  EXPECT_EQ(rec.epoch, 1u);
  ExpectCubesIdentical(rec.cube, rig.post, "durable");

  // A second refresh stacks: epoch 2 in, epoch 0 retired.
  EXPECT_EQ(coordinator.Refresh(rig.delta), 2u);
  EXPECT_EQ(set.serving_epoch(), 2u);
  EXPECT_EQ(set.HostedEpochs(), (std::vector<std::uint64_t>{1, 2}));
  set.Shutdown();
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace sncube
