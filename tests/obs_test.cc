// Tests for src/obs/: recorder semantics, registry arithmetic, exporter
// determinism, and the golden build trace.
//
// The golden file (testdata/obs_build_trace_p2.json) pins the *byte-exact*
// Chrome trace of a fixed 2-rank build: same seed, same simulated clock,
// same JSON. Regenerate deliberately after changing span placement or the
// exporter format:
//
//   SNCUBE_REGEN_GOLDEN=1 ./obs_test --gtest_filter='*GoldenBuildTrace*'
//
// and review the diff like any other code change.
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/parallel_cube.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "obs/export.h"
#include "obs/metrics_registry.h"
#include "obs/trace.h"

namespace sncube {
namespace {

// Hand-cranked clock: tests advance time explicitly.
class FakeClock final : public obs::SimClockSource {
 public:
  double TraceNowSeconds() const override { return now_s_; }
  std::uint64_t TraceSuperstep() const override { return superstep_; }

  void Advance(double s) { now_s_ += s; }
  void NextSuperstep() { ++superstep_; }

 private:
  double now_s_ = 0;
  std::uint64_t superstep_ = 0;
};

// ---------------------------------------------------------------------------
// TraceRecorder

TEST(TraceRecorder, RecordsNestedSpansWithParentAndDepth) {
  FakeClock clock;
  obs::TraceRecorder rec(3, &clock);
  const auto outer = rec.OpenSpan("outer");
  clock.Advance(1.0);
  const auto inner = rec.OpenSpan("inner", 7);
  clock.Advance(0.5);
  rec.CloseSpan(inner);
  rec.CloseSpan(outer);

  const obs::RankTrace t = rec.Finish();
  EXPECT_EQ(t.rank, 3);
  ASSERT_EQ(t.spans.size(), 2u);
  EXPECT_STREQ(t.spans[0].name, "outer");
  EXPECT_EQ(t.spans[0].parent, -1);
  EXPECT_EQ(t.spans[0].depth, 0);
  EXPECT_DOUBLE_EQ(t.spans[0].begin_s, 0.0);
  EXPECT_DOUBLE_EQ(t.spans[0].end_s, 1.5);
  EXPECT_STREQ(t.spans[1].name, "inner");
  EXPECT_EQ(t.spans[1].index, 7);
  EXPECT_EQ(t.spans[1].parent, 0);
  EXPECT_EQ(t.spans[1].depth, 1);
  EXPECT_DOUBLE_EQ(t.spans[1].begin_s, 1.0);
}

TEST(TraceRecorder, FinishForceClosesOpenSpansAndResets) {
  FakeClock clock;
  obs::TraceRecorder rec(0, &clock);
  rec.OpenSpan("left-open");
  clock.Advance(2.0);
  const obs::RankTrace t = rec.Finish();
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_DOUBLE_EQ(t.spans[0].end_s, 2.0);
  EXPECT_DOUBLE_EQ(t.end_time_s, 2.0);
  // Recorder is reusable after Finish.
  EXPECT_EQ(rec.span_count(), 0u);
  EXPECT_EQ(rec.open_depth(), 0u);
}

TEST(TraceRecorder, RecordsCommPerSuperstep) {
  FakeClock clock;
  obs::TraceRecorder rec(0, &clock);
  clock.NextSuperstep();  // mimic SyncPrologue's pre-increment
  clock.Advance(0.25);
  rec.RecordComm(100, 40);
  const obs::RankTrace t = rec.Finish();
  ASSERT_EQ(t.comms.size(), 1u);
  EXPECT_EQ(t.comms[0].superstep, 0u);  // counter - 1, matching abort reports
  EXPECT_DOUBLE_EQ(t.comms[0].time_s, 0.25);
  EXPECT_EQ(t.comms[0].bytes_out, 100u);
  EXPECT_EQ(t.comms[0].bytes_in, 40u);
}

TEST(ScopedSpan, NoRecorderInstalledRecordsNothing) {
  ASSERT_EQ(obs::CurrentRecorder(), nullptr);
  {
    SNCUBE_TRACE_SPAN("ignored");
    SNCUBE_TRACE_SPAN_IDX("also-ignored", 4);
  }
  EXPECT_EQ(obs::CurrentRecorder(), nullptr);
}

TEST(ScopedSpan, ThreadRecorderScopeInstallsAndRestores) {
  FakeClock clock;
  obs::TraceRecorder rec(0, &clock);
  {
    obs::ThreadRecorderScope scope(&rec);
    ASSERT_EQ(obs::CurrentRecorder(), &rec);
    SNCUBE_TRACE_SPAN("via-macro");
    clock.Advance(1.0);
  }
  EXPECT_EQ(obs::CurrentRecorder(), nullptr);
  const obs::RankTrace t = rec.Finish();
  ASSERT_EQ(t.spans.size(), 1u);
  EXPECT_STREQ(t.spans[0].name, "via-macro");
}

TEST(PhaseSpan, SwitchProducesSiblings) {
  FakeClock clock;
  obs::TraceRecorder rec(0, &clock);
  obs::ThreadRecorderScope scope(&rec);
  {
    SNCUBE_TRACE_SPAN("parent");
    obs::PhaseSpan step;
    step.Switch("a", 0);
    clock.Advance(1.0);
    step.Switch("b", 0);
    clock.Advance(1.0);
  }
  const obs::RankTrace t = rec.Finish();
  ASSERT_EQ(t.spans.size(), 3u);
  EXPECT_EQ(t.spans[1].parent, 0);
  EXPECT_EQ(t.spans[2].parent, 0);  // sibling of "a", not child
  EXPECT_DOUBLE_EQ(t.spans[1].end_s, t.spans[2].begin_s);
}

TEST(TraceSink, SnapshotSortsByRank) {
  FakeClock clock;
  obs::TraceSink sink;
  for (int rank : {2, 0, 1}) {
    obs::TraceRecorder rec(rank, &clock);
    sink.Absorb(rec.Finish());
  }
  const auto ranks = sink.Snapshot();
  ASSERT_EQ(ranks.size(), 3u);
  EXPECT_EQ(ranks[0].rank, 0);
  EXPECT_EQ(ranks[2].rank, 2);
  sink.Clear();
  EXPECT_TRUE(sink.Empty());
}

// ---------------------------------------------------------------------------
// MetricsRegistry

TEST(MetricsRegistry, CountersGaugesHistograms) {
  obs::MetricsRegistry reg;
  reg.GetCounter("net.bytes_sent").Add(100);
  reg.GetCounter("net.bytes_sent").Increment();
  EXPECT_EQ(reg.GetCounter("net.bytes_sent").value(), 101u);

  reg.GetGauge("run.ranks").Set(4);
  reg.GetGauge("run.ranks").Add(2);
  EXPECT_DOUBLE_EQ(reg.GetGauge("run.ranks").value(), 6.0);

  obs::Histogram& h = reg.GetHistogram("serve.latency_us");
  for (int i = 1; i <= 100; ++i) h.Record(static_cast<std::uint64_t>(i));
  const obs::HistogramSnapshot snap = h.Read();
  EXPECT_EQ(snap.count, 100u);
  EXPECT_EQ(snap.max, 100u);
  EXPECT_DOUBLE_EQ(snap.mean(), 50.5);
  EXPECT_GT(snap.p99, snap.p50);
}

TEST(MetricsRegistry, ToJsonIsSortedAndDeterministic) {
  obs::MetricsRegistry reg;
  reg.GetCounter("zzz").Add(1);
  reg.GetCounter("aaa").Add(2);
  reg.GetGauge("mid").Set(0.5);
  const std::string json = reg.ToJson();
  EXPECT_LT(json.find("\"aaa\""), json.find("\"zzz\""));
  EXPECT_EQ(json, reg.ToJson());
}

// ---------------------------------------------------------------------------
// Exporters over a real 2-rank build

struct BuildTrace {
  std::vector<obs::RankTrace> ranks;
  std::vector<RankStats> stats;
  double sim_time_s = 0;
};

BuildTrace TracedBuild() {
  DatasetSpec spec;
  spec.rows = 600;
  spec.cardinalities = {8, 6, 4};
  spec.seed = 5;
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(3);

  Cluster cluster(2);
  obs::TraceSink sink;
  cluster.set_trace_sink(&sink);
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, 2, comm.rank());
    BuildParallelCube(comm, raw, schema, selected);
  });
  BuildTrace out;
  out.ranks = sink.Snapshot();
  out.stats = cluster.stats();
  out.sim_time_s = cluster.SimTimeSeconds();
  return out;
}

TEST(Export, GoldenBuildTrace) {
  const std::string json = obs::ChromeTraceJson(TracedBuild().ranks);
  const std::string path =
      std::string(SNCUBE_TESTDATA_DIR) + "/obs_build_trace_p2.json";
  if (std::getenv("SNCUBE_REGEN_GOLDEN") != nullptr) {
    obs::WriteTextFile(path, json);
    GTEST_SKIP() << "regenerated " << path;
  }
  std::ifstream is(path);
  ASSERT_TRUE(is.good()) << "missing golden file " << path;
  std::stringstream ss;
  ss << is.rdbuf();
  // Byte-identical: same seed -> same simulated clock -> same trace.
  EXPECT_EQ(json, ss.str());
}

TEST(Export, BuildTraceIsDeterministicAcrossRuns) {
  const std::string a = obs::ChromeTraceJson(TracedBuild().ranks);
  const std::string b = obs::ChromeTraceJson(TracedBuild().ranks);
  EXPECT_EQ(a, b);
}

TEST(Export, BuildTraceCoversAtLeast95PercentOfRunTime) {
  const BuildTrace t = TracedBuild();
  EXPECT_GE(obs::SpanCoverage(t.ranks), 0.95);
}

TEST(Export, RunSummaryHasPhaseMatrixSuperstepsAndMetrics) {
  const BuildTrace t = TracedBuild();
  obs::MetricsRegistry reg;
  obs::AbsorbRunStats(reg, t.stats, t.sim_time_s);
  EXPECT_EQ(reg.GetGauge("run.ranks").value(), 2.0);
  EXPECT_GT(reg.GetCounter("net.bytes_sent").value(), 0u);

  const std::string json =
      obs::RunSummaryJson(t.stats, t.sim_time_s, &t.ranks, &reg);
  EXPECT_NE(json.find("\"sim_time_s\""), std::string::npos);
  EXPECT_NE(json.find("\"ranks\":2"), std::string::npos);
  EXPECT_NE(json.find("\"partition/0\""), std::string::npos);
  EXPECT_NE(json.find("\"per_rank_s\""), std::string::npos);
  EXPECT_NE(json.find("\"supersteps\""), std::string::npos);
  EXPECT_NE(json.find("\"metrics\""), std::string::npos);
  // Null sections are omitted, not emitted empty.
  const std::string bare = obs::RunSummaryJson(t.stats, t.sim_time_s,
                                               nullptr, nullptr);
  EXPECT_EQ(bare.find("\"supersteps\""), std::string::npos);
  EXPECT_EQ(bare.find("\"metrics\""), std::string::npos);
}

TEST(Export, TraceCommVolumeMatchesClusterBytes) {
  const BuildTrace t = TracedBuild();
  std::uint64_t traced = 0;
  for (const auto& rank : t.ranks) {
    for (const auto& c : rank.comms) traced += c.bytes_out;
  }
  std::uint64_t counted = 0;
  for (const auto& rs : t.stats) counted += rs.Total().bytes_sent;
  EXPECT_EQ(traced, counted);
}

TEST(Export, UntracedBuildRecordsNoSpans) {
  // Same build without a sink: the span sites must stay inert.
  DatasetSpec spec;
  spec.rows = 200;
  spec.cardinalities = {4, 4};
  spec.seed = 5;
  const Schema schema = spec.MakeSchema();
  Cluster cluster(2);
  obs::TraceSink sink;  // never attached
  cluster.Run([&](Comm& comm) {
    EXPECT_EQ(obs::CurrentRecorder(), nullptr);
    const Relation raw = GenerateSlice(spec, 2, comm.rank());
    BuildParallelCube(comm, raw, schema, AllViews(2));
  });
  EXPECT_TRUE(sink.Empty());
}

}  // namespace
}  // namespace sncube
