// Handcrafted Merge–Partitions scenarios: the cases of Figure 4 constructed
// fragment by fragment, exercising the exact boundary mechanics the
// end-to-end property tests only reach statistically.
#include <gtest/gtest.h>

#include <mutex>

#include "core/merge_partitions.h"
#include "net/cluster.h"
#include "relation/sort.h"
#include "seqcube/cube_result.h"

namespace sncube {
namespace {

Relation Rel(std::initializer_list<std::pair<std::vector<Key>, Measure>> rows,
             int width) {
  Relation rel(width);
  for (const auto& [keys, m] : rows) rel.Append(keys, m);
  return rel;
}

// Runs MergePartitions on per-rank single-view cubes and returns the merged
// per-rank relations.
std::vector<Relation> MergeOneView(std::vector<ViewResult> fragments,
                                   const std::vector<int>& root_order,
                                   MergeOptions opts = {},
                                   MergeStats* stats_out = nullptr) {
  const int p = static_cast<int>(fragments.size());
  Cluster cluster(p);
  std::vector<Relation> out(static_cast<std::size_t>(p));
  std::vector<MergeStats> stats(static_cast<std::size_t>(p));
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const auto r = static_cast<std::size_t>(comm.rank());
    CubeResult cube;
    cube.views[fragments[r].id] = ViewResult{fragments[r].id,
                                             fragments[r].order,
                                             Relation(fragments[r].rel),
                                             true};
    MergeStats st;
    MergePartitions(comm, cube, root_order, opts, &st);
    std::lock_guard<std::mutex> lock(mu);
    out[r] = std::move(cube.views.at(fragments[r].id).rel);
    stats[r] = st;
  });
  if (stats_out != nullptr) *stats_out = stats[0];
  return out;
}

// --------------------------------------------------------------------------
// Case 1: prefix views.

TEST(MergeCase1, AdjacentBoundaryGroupCombines) {
  // View A (order = global prefix). Rank 0 ends with key 5; rank 1 starts
  // with key 5: the classic one-item exchange.
  const ViewId a = ViewId::FromDims({0});
  std::vector<ViewResult> frags{
      {a, {0}, Rel({{{1}, 10}, {{5}, 3}}, 1), true},
      {a, {0}, Rel({{{5}, 4}, {{9}, 7}}, 1), true},
  };
  MergeStats stats;
  auto out = MergeOneView(std::move(frags), {0, 1, 2}, {}, &stats);
  EXPECT_EQ(stats.case1_views, 1);
  ASSERT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0].measure(1), 7);  // 3 + 4
  ASSERT_EQ(out[1].size(), 1u);
  EXPECT_EQ(out[1].key(0, 0), 9u);
}

TEST(MergeCase1, GroupSpanningManyRanks) {
  // One giant group (key 4) spans ranks 1..4 — middle ranks hold ONLY that
  // key; everything must collapse onto rank 0 (the leftmost holder).
  const ViewId a = ViewId::FromDims({0});
  std::vector<ViewResult> frags{
      {a, {0}, Rel({{{1}, 1}, {{4}, 1}}, 1), true},
      {a, {0}, Rel({{{4}, 2}}, 1), true},
      {a, {0}, Rel({{{4}, 3}}, 1), true},
      {a, {0}, Rel({{{4}, 4}}, 1), true},
      {a, {0}, Rel({{{4}, 5}, {{6}, 9}}, 1), true},
  };
  auto out = MergeOneView(std::move(frags), {0, 1});
  ASSERT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[0].measure(1), 1 + 2 + 3 + 4 + 5);
  EXPECT_TRUE(out[1].empty());
  EXPECT_TRUE(out[2].empty());
  EXPECT_TRUE(out[3].empty());
  ASSERT_EQ(out[4].size(), 1u);
  EXPECT_EQ(out[4].key(0, 0), 6u);
}

TEST(MergeCase1, EmptyShardsInTheChain) {
  const ViewId a = ViewId::FromDims({0});
  std::vector<ViewResult> frags{
      {a, {0}, Rel({{{2}, 5}}, 1), true},
      {a, {0}, Relation(1), true},  // empty middle rank
      {a, {0}, Rel({{{2}, 6}, {{3}, 1}}, 1), true},
  };
  auto out = MergeOneView(std::move(frags), {0, 1});
  ASSERT_EQ(out[0].size(), 1u);
  EXPECT_EQ(out[0].measure(0), 11);
  EXPECT_TRUE(out[1].empty());
  ASSERT_EQ(out[2].size(), 1u);
  EXPECT_EQ(out[2].key(0, 0), 3u);
}

TEST(MergeCase1, NoBoundaryDuplicatesNoTraffic) {
  const ViewId ab = ViewId::FromDims({0, 1});
  std::vector<ViewResult> frags{
      {ab, {0, 1}, Rel({{{1, 1}, 1}, {{1, 2}, 2}}, 2), true},
      {ab, {0, 1}, Rel({{{2, 1}, 3}}, 2), true},
  };
  auto out = MergeOneView(std::move(frags), {0, 1, 2});
  EXPECT_EQ(out[0].size(), 2u);
  EXPECT_EQ(out[1].size(), 1u);
  EXPECT_EQ(out[0].measure(0), 1);
  EXPECT_EQ(out[1].measure(0), 3);
}

// --------------------------------------------------------------------------
// Case 2: non-prefix views with modest overlap.

TEST(MergeCase2, OverlapRoutedToOwner) {
  // View B with order {1} while the global order starts with 0 → non-prefix.
  // Fragments overlap around keys 4..6; balanced enough for Case 2.
  const ViewId b = ViewId::FromDims({1});
  std::vector<ViewResult> frags{
      {b, {1}, Rel({{{1}, 1}, {{4}, 2}, {{6}, 3}}, 1), true},
      {b, {1}, Rel({{{4}, 10}, {{5}, 20}, {{9}, 30}}, 1), true},
  };
  MergeStats stats;
  MergeOptions opts;
  opts.gamma = 0.8;  // keep it in Case 2 despite the small sizes
  auto out = MergeOneView(std::move(frags), {0, 1}, opts, &stats);
  EXPECT_EQ(stats.case2_views, 1);
  // Rank 0 owns keys <= 6: {1:1, 4:12, 5:20, 6:3}; rank 1 owns (6, 9].
  ASSERT_EQ(out[0].size(), 4u);
  EXPECT_EQ(out[0].key(1, 0), 4u);
  EXPECT_EQ(out[0].measure(1), 12);
  EXPECT_EQ(out[0].measure(2), 20);
  ASSERT_EQ(out[1].size(), 1u);
  EXPECT_EQ(out[1].key(0, 0), 9u);
  EXPECT_EQ(out[1].measure(0), 30);
}

TEST(MergeCase2, FullyCoveredRankOwnsNothing) {
  // Rank 1's entire range sits inside rank 0's: its last key (5) is below
  // rank 0's last key (9), so rank 1 owns nothing and ships everything.
  const ViewId b = ViewId::FromDims({1});
  std::vector<ViewResult> frags{
      {b, {1}, Rel({{{1}, 1}, {{9}, 2}}, 1), true},
      {b, {1}, Rel({{{3}, 10}, {{5}, 20}}, 1), true},
  };
  MergeOptions opts;
  opts.gamma = 2.0;  // force the Case-2 path even though very imbalanced
  auto out = MergeOneView(std::move(frags), {0, 1}, opts);
  ASSERT_EQ(out[0].size(), 4u);
  EXPECT_TRUE(out[1].empty());
  EXPECT_TRUE(IsSorted(out[0], std::vector<int>{0}));
}

// --------------------------------------------------------------------------
// Case 3: imbalanced non-prefix views re-sorted globally.

TEST(MergeCase3, TriggersOnImbalanceAndRebalances) {
  // Rank 0 holds far more of the view's key space than rank 1 would ever
  // receive; tiny gamma forces the full re-sort.
  const ViewId b = ViewId::FromDims({1});
  Relation big(1);
  for (Key k = 0; k < 40; ++k) big.Append(std::vector<Key>{k}, 1);
  Relation small(1);
  small.Append(std::vector<Key>{20}, 100);

  std::vector<ViewResult> frags{
      {b, {1}, std::move(big), true},
      {b, {1}, std::move(small), true},
  };
  MergeStats stats;
  MergeOptions opts;
  opts.force_case3 = true;
  auto out = MergeOneView(std::move(frags), {0, 1}, opts, &stats);
  EXPECT_EQ(stats.case3_views, 1);

  // All 40 distinct keys, none straddling, measure of key 20 combined.
  Relation combined(1);
  combined.Concat(Relation(out[0]));
  combined.Concat(Relation(out[1]));
  ASSERT_EQ(combined.size(), 40u);
  for (std::size_t r = 0; r < combined.size(); ++r) {
    EXPECT_EQ(combined.key(r, 0), static_cast<Key>(r));
    EXPECT_EQ(combined.measure(r), combined.key(r, 0) == 20 ? 101 : 1);
  }
  // Balanced by the sorter's shift.
  EXPECT_NEAR(static_cast<double>(out[0].size()),
              static_cast<double>(out[1].size()), 2.0);
}

// --------------------------------------------------------------------------
// Local-tree order normalization.

TEST(MergeNormalization, DifferingOrdersAdoptRankZeros) {
  // Rank 1 produced the view sorted in the opposite column order; the merge
  // must re-sort it to rank 0's order before anything else.
  const ViewId bc = ViewId::FromDims({1, 2});
  Relation r0 = Rel({{{1, 2}, 5}, {{2, 1}, 6}}, 2);        // sorted by (B,C)
  Relation r1 = Rel({{{9, 0}, 7}, {{3, 1}, 8}}, 2);        // sorted by (C,B)
  std::vector<ViewResult> frags{
      {bc, {1, 2}, std::move(r0), true},
      {bc, {2, 1}, std::move(r1), true},
  };
  MergeStats stats;
  MergeOptions opts;
  opts.gamma = 2.0;
  auto out = MergeOneView(std::move(frags), {0, 1, 2, 3}, opts, &stats);
  EXPECT_EQ(stats.resorted_views, 1);
  Relation combined(2);
  combined.Concat(Relation(out[0]));
  combined.Concat(Relation(out[1]));
  ASSERT_EQ(combined.size(), 4u);
  EXPECT_TRUE(IsSorted(out[0], std::vector<int>{0, 1}));
  EXPECT_TRUE(IsSorted(out[1], std::vector<int>{0, 1}));
}

// --------------------------------------------------------------------------
// Auxiliary views are dropped without communication.

TEST(MergeAux, AuxViewsErased) {
  const ViewId a = ViewId::FromDims({0});
  const ViewId ab = ViewId::FromDims({0, 1});
  const int p = 2;
  Cluster cluster(p);
  std::vector<std::size_t> counts(p, 99);
  cluster.Run([&](Comm& comm) {
    CubeResult cube;
    cube.views[a] = ViewResult{a, {0}, Rel({{{1}, 1}}, 1), true};
    cube.views[ab] = ViewResult{ab, {0, 1}, Rel({{{1, 1}, 1}}, 2), false};
    MergePartitions(comm, cube, {0, 1}, {});
    counts[static_cast<std::size_t>(comm.rank())] = cube.views.size();
  });
  EXPECT_EQ(counts[0], 1u);
  EXPECT_EQ(counts[1], 1u);
}

TEST(MergeStatsAccounting, SumsToViewCount) {
  const ViewId b = ViewId::FromDims({1});
  const ViewId a = ViewId::FromDims({0});
  const int p = 3;
  Cluster cluster(p);
  std::vector<MergeStats> stats(p);
  cluster.Run([&](Comm& comm) {
    CubeResult cube;
    const Key base = static_cast<Key>(comm.rank() * 10);
    cube.views[a] =
        ViewResult{a, {0}, Rel({{{base}, 1}, {{base + 5}, 1}}, 1), true};
    cube.views[b] =
        ViewResult{b, {1}, Rel({{{base}, 1}, {{base + 5}, 1}}, 1), true};
    MergeStats st;
    MergePartitions(comm, cube, {0, 1}, {}, &st);
    stats[static_cast<std::size_t>(comm.rank())] = st;
  });
  EXPECT_EQ(stats[0].case1_views + stats[0].case2_views +
                stats[0].case3_views,
            2);
  EXPECT_EQ(stats[0].case1_views, 1);  // view A is the prefix view
}

}  // namespace
}  // namespace sncube
