// Fault injection and hardened failure paths: plan parsing, deterministic
// injector streams, typed cluster aborts, cluster reusability after a
// failure, straggler clock stretching, disk-error escalation, and the
// kill/restart acceptance criterion — a build aborted by an injected rank
// failure, restarted from its checkpoint directory, must produce a cube
// byte-identical to a fault-free build.
#include <gtest/gtest.h>

#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/crc32c.h"
#include "core/parallel_cube.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "net/fault.h"
#include "relation/serialize.h"

namespace sncube {
namespace {

TEST(FaultPlan, ParsesFullSpec) {
  const FaultPlan plan =
      FaultPlan::Parse("kill:1@5;slow:2x3.5;diskerr:0:0.25;seed:42");
  ASSERT_EQ(plan.kills.size(), 1u);
  EXPECT_EQ(plan.kills[0].rank, 1);
  EXPECT_EQ(plan.kills[0].at_superstep, 5u);
  ASSERT_EQ(plan.stragglers.size(), 1u);
  EXPECT_EQ(plan.stragglers[0].rank, 2);
  EXPECT_DOUBLE_EQ(plan.stragglers[0].factor, 3.5);
  ASSERT_EQ(plan.disk_errors.size(), 1u);
  EXPECT_EQ(plan.disk_errors[0].rank, 0);
  EXPECT_DOUBLE_EQ(plan.disk_errors[0].rate, 0.25);
  EXPECT_EQ(plan.seed, 42u);
  EXPECT_FALSE(plan.empty());
  EXPECT_TRUE(FaultPlan{}.empty());
  EXPECT_TRUE(FaultPlan::Parse("").empty());
}

TEST(FaultPlan, MalformedSpecsThrow) {
  for (const char* bad :
       {"kill:1", "kill:x@2", "kill:@2", "kill:1@", "slow:1", "slow:1x0.5",
        "diskerr:0", "diskerr:0:1.5", "bogus:3", "kill",
        // Hardened rejections: duplicates, out-of-range and garbage values.
        "kill:1@3;kill:1@5", "slow:2x2.0;slow:2x3.0",
        "diskerr:0:0.1;diskerr:0:0.2", "bitflip:0:0.5;bitflip:0:0.5",
        "tornwrite:1:0.1;tornwrite:1:0.2", "seed:1;seed:2",
        "diskerr:0:-0.1", "bitflip:0:1.5", "tornwrite:0:-1",
        "bitflip:0:nan", "slow:1xnan", "diskerr:0:0.5junk", "slow:1x2.0abc",
        "kill:1@2x", "seed:12junk", "seed:"}) {
    EXPECT_THROW(FaultPlan::Parse(bad), SncubeError) << bad;
  }
  // The typed error names the offending clause.
  try {
    FaultPlan::Parse("kill:0@1;diskerr:2:7.5");
    FAIL() << "expected throw";
  } catch (const SncubeError& e) {
    EXPECT_NE(std::string(e.what()).find("diskerr:2:7.5"), std::string::npos);
  }
}

TEST(FaultPlan, ParsesCorruptionClausesAndRoundTripsToSpec) {
  const FaultPlan plan = FaultPlan::Parse(
      "kill:1@5;slow:2x3.5;diskerr:0:0.25;bitflip:0:0.5;tornwrite:1:0.125;"
      "seed:42");
  ASSERT_EQ(plan.bit_flips.size(), 1u);
  EXPECT_EQ(plan.bit_flips[0].rank, 0);
  EXPECT_DOUBLE_EQ(plan.bit_flips[0].rate, 0.5);
  ASSERT_EQ(plan.torn_writes.size(), 1u);
  EXPECT_EQ(plan.torn_writes[0].rank, 1);
  EXPECT_DOUBLE_EQ(plan.torn_writes[0].rate, 0.125);

  const std::string spec = plan.ToSpec();
  const FaultPlan reparsed = FaultPlan::Parse(spec);
  EXPECT_EQ(reparsed.ToSpec(), spec);
  EXPECT_EQ(reparsed.kills.size(), 1u);
  EXPECT_EQ(reparsed.seed, 42u);
  EXPECT_DOUBLE_EQ(reparsed.torn_writes[0].rate, 0.125);

  // An all-defaults plan still round-trips (seed-only spec).
  EXPECT_TRUE(FaultPlan::Parse(FaultPlan{}.ToSpec()).empty());
}

TEST(FaultPlan, ParsesServeClausesAndRoundTripsToSpec) {
  // Serve-tier clauses: windows are half-open [from, until) intervals of
  // router request sequence numbers; an omitted until means "forever".
  const FaultPlan plan = FaultPlan::Parse(
      "shardkill:1:10-60;shardkill:2:40;shardslow:0:0-120:4;"
      "shardslow:3:25:2.5;seed:7");
  ASSERT_EQ(plan.shard_kills.size(), 2u);
  EXPECT_EQ(plan.shard_kills[0].shard, 1);
  EXPECT_EQ(plan.shard_kills[0].from, 10u);
  EXPECT_EQ(plan.shard_kills[0].until, 60u);
  EXPECT_EQ(plan.shard_kills[1].shard, 2);
  EXPECT_EQ(plan.shard_kills[1].from, 40u);
  EXPECT_EQ(plan.shard_kills[1].until, FaultPlan::kNoEnd);
  ASSERT_EQ(plan.shard_slows.size(), 2u);
  EXPECT_EQ(plan.shard_slows[0].shard, 0);
  EXPECT_EQ(plan.shard_slows[0].from, 0u);
  EXPECT_EQ(plan.shard_slows[0].until, 120u);
  EXPECT_DOUBLE_EQ(plan.shard_slows[0].factor, 4.0);
  EXPECT_EQ(plan.shard_slows[1].until, FaultPlan::kNoEnd);
  EXPECT_DOUBLE_EQ(plan.shard_slows[1].factor, 2.5);
  EXPECT_FALSE(plan.empty());

  const std::string spec = plan.ToSpec();
  const FaultPlan reparsed = FaultPlan::Parse(spec);
  EXPECT_EQ(reparsed.ToSpec(), spec);
  EXPECT_EQ(reparsed.shard_kills[1].until, FaultPlan::kNoEnd);
  EXPECT_DOUBLE_EQ(reparsed.shard_slows[0].factor, 4.0);
  // Endless windows serialize without the -until suffix.
  EXPECT_NE(spec.find("shardkill:2:40;"), std::string::npos);
  EXPECT_NE(spec.find("shardkill:1:10-60"), std::string::npos);
}

TEST(FaultPlan, MalformedServeClausesThrow) {
  for (const char* bad :
       {"shardkill:1", "shardkill:x:5", "shardkill:1:", "shardkill:1:x",
        "shardkill:1:90-40",   // empty window (until <= from)
        "shardkill:1:5-5",     // likewise
        "shardkill:1:5;shardkill:1:9",  // duplicate shard
        "shardslow:0:5",       // missing factor
        "shardslow:0:5:0.5",   // factor < 1 would be a speedup
        "shardslow:0:5:nan", "shardslow:0:5-2:3",
        "shardslow:0:5:2;shardslow:0:9:3", "shardkill:1:4-5junk"}) {
    EXPECT_THROW(FaultPlan::Parse(bad), SncubeError) << bad;
  }
}

TEST(FaultPlan, ParsesRefreshClausesAndRoundTripsToSpec) {
  const FaultPlan plan =
      FaultPlan::Parse("refreshkill:3;refreshkill:0;tornwrite:0:1;seed:11");
  ASSERT_EQ(plan.refresh_kills.size(), 2u);
  EXPECT_EQ(plan.refresh_kills[0].phase, 3);
  EXPECT_EQ(plan.refresh_kills[1].phase, 0);
  EXPECT_FALSE(plan.empty());

  const std::string spec = plan.ToSpec();
  const FaultPlan reparsed = FaultPlan::Parse(spec);
  EXPECT_EQ(reparsed.ToSpec(), spec);
  ASSERT_EQ(reparsed.refresh_kills.size(), 2u);
  EXPECT_EQ(reparsed.refresh_kills[0].phase, 3);
}

TEST(FaultPlan, MalformedRefreshClausesThrow) {
  for (const char* bad :
       {"refreshkill", "refreshkill:", "refreshkill:x", "refreshkill:-1",
        "refreshkill:2.5", "refreshkill:3junk", "refreshkill:nan",
        "refreshkill:2;refreshkill:2"}) {  // duplicate phase
    EXPECT_THROW(FaultPlan::Parse(bad), SncubeError) << bad;
  }
  // The typed error names the offending clause.
  try {
    FaultPlan::Parse("refreshkill:1;refreshkill:zzz");
    FAIL() << "expected throw";
  } catch (const SncubeError& e) {
    EXPECT_NE(std::string(e.what()).find("refreshkill:zzz"),
              std::string::npos);
  }
}

TEST(FaultInjector, RefreshKillFiresOnlyAtItsPhases) {
  const FaultPlan plan = FaultPlan::Parse("refreshkill:1;refreshkill:4");
  // Refresh kills are not rank-scoped: any injector sees them.
  FaultInjector inj(plan, 0);
  EXPECT_NO_THROW(inj.OnRefreshPhase(0));
  EXPECT_THROW(inj.OnRefreshPhase(1), InjectedFaultError);
  EXPECT_NO_THROW(inj.OnRefreshPhase(2));
  EXPECT_NO_THROW(inj.OnRefreshPhase(3));
  EXPECT_THROW(inj.OnRefreshPhase(4), InjectedFaultError);
  FaultInjector none(FaultPlan{}, 0);
  for (int phase = 0; phase < 8; ++phase) {
    EXPECT_NO_THROW(none.OnRefreshPhase(phase));
  }
}

TEST(FaultInjector, WriteFaultStreamIsDeterministicAndSeparate) {
  const FaultPlan plan =
      FaultPlan::Parse("diskerr:0:0.5;bitflip:0:0.5;tornwrite:0:0.5;seed:7");
  // Identical draws for identical (plan, rank).
  FaultInjector a(plan, 0);
  FaultInjector b(plan, 0);
  int flips = 0;
  int tears = 0;
  for (int i = 0; i < 256; ++i) {
    const WriteFault fa = a.NextWriteFault(64);
    const WriteFault fb = b.NextWriteFault(64);
    EXPECT_EQ(static_cast<int>(fa.kind), static_cast<int>(fb.kind));
    EXPECT_EQ(fa.offset, fb.offset);
    if (fa.kind == WriteFault::Kind::kBitFlip) {
      ++flips;
      EXPECT_LT(fa.offset, 64u * 8u);
    } else if (fa.kind == WriteFault::Kind::kTornWrite) {
      ++tears;
      EXPECT_LT(fa.offset, 64u);
    }
  }
  EXPECT_GT(flips, 0);
  EXPECT_GT(tears, 0);

  // The corruption stream must not perturb the transient-error stream:
  // a plan with and without corruption clauses makes the same ops fail.
  FaultInjector with(plan, 0);
  FaultInjector without(FaultPlan::Parse("diskerr:0:0.5;seed:7"), 0);
  for (int i = 0; i < 256; ++i) {
    if (i % 3 == 0) with.NextWriteFault(128);  // interleaved corruption draws
    EXPECT_EQ(with.NextOpFails(false), without.NextOpFails(false)) << i;
  }

  // A rank the plan doesn't target is never corrupted; zero-byte writes
  // consume no draws.
  FaultInjector other(plan, 1);
  for (int i = 0; i < 64; ++i) {
    EXPECT_EQ(static_cast<int>(other.NextWriteFault(64).kind),
              static_cast<int>(WriteFault::Kind::kNone));
    EXPECT_EQ(static_cast<int>(a.NextWriteFault(0).kind),
              static_cast<int>(WriteFault::Kind::kNone));
  }
}

TEST(FaultInjector, DiskErrorStreamIsDeterministicPerRankAndSeed) {
  const FaultPlan plan = FaultPlan::Parse("diskerr:0:0.5;seed:7");
  FaultInjector a(plan, 0);
  FaultInjector b(plan, 0);
  std::vector<bool> sa;
  std::vector<bool> sb;
  for (int i = 0; i < 256; ++i) {
    sa.push_back(a.NextOpFails(false));
    sb.push_back(b.NextOpFails(i % 2 == 0));  // is_write doesn't perturb it
  }
  EXPECT_EQ(sa, sb);
  EXPECT_NE(std::count(sa.begin(), sa.end(), true), 0);

  // A rank the plan doesn't target never fails.
  FaultInjector other(plan, 1);
  for (int i = 0; i < 64; ++i) EXPECT_FALSE(other.NextOpFails(false));

  // A different seed yields a different stream.
  FaultInjector reseeded(FaultPlan::Parse("diskerr:0:0.5;seed:8"), 0);
  std::vector<bool> sc;
  for (int i = 0; i < 256; ++i) sc.push_back(reseeded.NextOpFails(false));
  EXPECT_NE(sa, sc);
}

TEST(FaultInjector, KillAndSlowdownApplyOnlyToTargetRank) {
  const FaultPlan plan = FaultPlan::Parse("kill:1@3;slow:1x6.0");
  FaultInjector victim(plan, 1);
  EXPECT_DOUBLE_EQ(victim.slowdown(), 6.0);
  victim.OnCollective(0);
  victim.OnCollective(2);
  EXPECT_THROW(victim.OnCollective(3), InjectedFaultError);
  FaultInjector bystander(plan, 0);
  EXPECT_DOUBLE_EQ(bystander.slowdown(), 1.0);
  bystander.OnCollective(3);  // no throw
}

TEST(Fault, KillAtSuperstepAbortsWithTypedError) {
  Cluster cluster(3);
  cluster.set_fault_plan(FaultPlan::Parse("kill:2@3"));
  try {
    cluster.Run([](Comm& comm) {
      for (int i = 0; i < 10; ++i) comm.AllReduceSum(1);
    });
    FAIL() << "injected kill must abort the Run";
  } catch (const ClusterAbortedError& e) {
    EXPECT_EQ(e.failed_rank(), 2);
    EXPECT_EQ(e.superstep(), 3u);
    EXPECT_NE(std::string(e.what()).find("rank 2"), std::string::npos);
  }
  ASSERT_TRUE(cluster.last_failure().has_value());
  EXPECT_EQ(cluster.last_failure()->failed_rank, 2);
  EXPECT_EQ(cluster.last_failure()->superstep, 3u);
  ASSERT_EQ(cluster.last_failure()->partial_stats.size(), 3u);
  EXPECT_TRUE(cluster.last_failure()->partial_stats[2].failed);
  // The doomed Run's numbers never reach the cluster's accumulated metrics.
  EXPECT_EQ(cluster.BytesSent(), 0u);
  EXPECT_DOUBLE_EQ(cluster.SimTimeSeconds(), 0.0);
}

TEST(Fault, RankThatFinishedBeforeTheFailureIsNotFlagged) {
  Cluster cluster(2);
  try {
    cluster.Run([](Comm& comm) {
      if (comm.rank() == 0) return;  // completes without any collective
      throw SncubeError("rank 1 exploded");
    });
    FAIL() << "Run must rethrow";
  } catch (const ClusterAbortedError& e) {
    EXPECT_EQ(e.failed_rank(), 1);
  }
  ASSERT_TRUE(cluster.last_failure().has_value());
  EXPECT_FALSE(cluster.last_failure()->partial_stats[0].failed);
  EXPECT_TRUE(cluster.last_failure()->partial_stats[1].failed);
}

TEST(Fault, ClusterReusableAfterFailureInsideAllToAllv) {
  // Rank 1 dies on entry to its third AllToAllv while the others are mid-
  // collective; the cluster must stay fully usable, and the second Run's
  // metrics must not carry anything from the failed attempt.
  Cluster cluster(4);
  cluster.set_fault_plan(FaultPlan::Parse("kill:1@2"));
  auto exchange = [](Comm& comm, std::size_t bytes) {
    std::vector<ByteBuffer> send(comm.size());
    send[(comm.rank() + 1) % comm.size()] = ByteBuffer(bytes);
    return comm.AllToAllv(std::move(send));
  };
  EXPECT_THROW(cluster.Run([&](Comm& comm) {
    for (int i = 0; i < 6; ++i) exchange(comm, 1000);
  }),
               ClusterAbortedError);
  ASSERT_TRUE(cluster.last_failure().has_value());

  cluster.clear_fault_plan();
  cluster.Run([&](Comm& comm) { exchange(comm, 50); });
  EXPECT_FALSE(cluster.last_failure().has_value());  // reset by the new Run
  // Only the second Run's traffic (payload + per-message trailer).
  EXPECT_EQ(cluster.BytesSent(), 4u * (50u + kFrameTrailerBytes));
  for (const auto& rs : cluster.stats()) {
    EXPECT_EQ(rs.supersteps, 1u);
    EXPECT_FALSE(rs.failed);
  }
}

TEST(Fault, StragglerStretchesTheSimulatedClock) {
  auto run = [](const char* plan) {
    Cluster cluster(2);
    if (plan != nullptr) cluster.set_fault_plan(FaultPlan::Parse(plan));
    cluster.Run([](Comm& comm) {
      comm.ChargeCpu(1.0);
      comm.Barrier();
    });
    return cluster.SimTimeSeconds();
  };
  const double base = run(nullptr);
  const double slow = run("slow:1x4.0");
  // Rank 1's second of CPU becomes four; the barrier latency term cancels.
  EXPECT_NEAR(slow - base, 3.0, 1e-9);
}

TEST(Fault, TransientDiskErrorOutsideRetryPathKillsTheRank) {
  // Disk charges in the compute path have no retry wrapper: a transient
  // error there is a rank failure, surfaced as a typed cluster abort.
  Cluster cluster(2);
  cluster.set_fault_plan(FaultPlan::Parse("diskerr:0:1.0;seed:3"));
  try {
    cluster.Run([](Comm& comm) {
      if (comm.rank() == 0) comm.disk().ChargeRead(4096);
      comm.Barrier();
    });
    FAIL() << "transient disk error must abort the Run";
  } catch (const ClusterAbortedError& e) {
    EXPECT_EQ(e.failed_rank(), 0);
    EXPECT_NE(std::string(e.what()).find("transient"), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Acceptance: kill rank 1 at superstep k, restart from the checkpoint
// directory, and compare the final cube byte-for-byte against a fault-free
// build — for p ∈ {2, 4} and two distinct kill points each.

using ShardBytes = std::vector<std::map<std::uint32_t, ByteBuffer>>;

ShardBytes CollectShardBytes(const std::vector<CubeResult>& shards) {
  ShardBytes out(shards.size());
  for (std::size_t r = 0; r < shards.size(); ++r) {
    for (const auto& [id, vr] : shards[r].views) {
      out[r][id.mask()] = SerializeRelation(vr.rel);
    }
  }
  return out;
}

TEST(FaultTolerance, KilledBuildRestartedFromCheckpointIsByteIdentical) {
  DatasetSpec spec;
  spec.rows = 2500;
  spec.cardinalities = {12, 6, 4};
  spec.seed = 99;
  const Schema schema = spec.MakeSchema();
  const auto selected = AllViews(3);

  for (int p : {2, 4}) {
    auto build = [&](Cluster& cluster, const std::string& ckpt_dir,
                     std::vector<CubeResult>* shards,
                     std::vector<ParallelCubeStats>* stats) {
      std::mutex mu;
      cluster.Run([&](Comm& comm) {
        const Relation raw = GenerateSlice(spec, p, comm.rank());
        ParallelCubeOptions opts;
        opts.checkpoint.dir = ckpt_dir;
        ParallelCubeStats st;
        CubeResult cube =
            BuildParallelCube(comm, raw, schema, selected, opts, &st);
        std::lock_guard<std::mutex> lock(mu);
        if (shards != nullptr) {
          (*shards)[static_cast<std::size_t>(comm.rank())] = std::move(cube);
        }
        if (stats != nullptr) {
          (*stats)[static_cast<std::size_t>(comm.rank())] = st;
        }
      });
    };

    // Fault-free reference, no checkpointing at all.
    Cluster reference(p);
    std::vector<CubeResult> ref_shards(p);
    build(reference, "", &ref_shards, nullptr);
    const ShardBytes ref_bytes = CollectShardBytes(ref_shards);
    const std::uint64_t total_supersteps = reference.stats()[0].supersteps;
    ASSERT_GT(total_supersteps, 3u);

    const std::uint64_t kill_points[] = {total_supersteps / 3,
                                         (2 * total_supersteps) / 3};
    ASSERT_NE(kill_points[0], kill_points[1]);
    for (const std::uint64_t kill_at : kill_points) {
      const auto dir = std::filesystem::temp_directory_path() /
                       ("sncube_fault_p" + std::to_string(p) + "_k" +
                        std::to_string(kill_at) + "_" +
                        std::to_string(::getpid()));
      std::filesystem::remove_all(dir);

      Cluster cluster(p);
      cluster.set_fault_plan(
          FaultPlan::Parse("kill:1@" + std::to_string(kill_at)));
      try {
        build(cluster, dir.string(), nullptr, nullptr);
        FAIL() << "p=" << p << " kill@" << kill_at << " did not abort";
      } catch (const ClusterAbortedError& e) {
        EXPECT_EQ(e.failed_rank(), 1);
        EXPECT_EQ(e.superstep(), kill_at);
      }

      // Restart against the same checkpoint directory, faults cleared.
      cluster.clear_fault_plan();
      std::vector<CubeResult> shards(p);
      std::vector<ParallelCubeStats> stats(p);
      build(cluster, dir.string(), &shards, &stats);
      EXPECT_EQ(CollectShardBytes(shards), ref_bytes)
          << "p=" << p << " kill@" << kill_at;
      // The later kill point falls after at least one completed partition,
      // so the restart must actually restore work instead of redoing it all.
      if (kill_at == kill_points[1]) {
        EXPECT_GT(stats[0].partitions_restored, 0)
            << "p=" << p << " kill@" << kill_at;
      }
      std::filesystem::remove_all(dir);
    }
  }
}

}  // namespace
}  // namespace sncube
