// Chaos explorer tests: the smoke search upholds the integrity invariant on
// the hardened code (every completed trial byte-identical to fault-free),
// plan generation is deterministic, and — against the deliberately
// re-opened silent-corruption hole (verify_restore=false) — the explorer
// finds a real integrity bug and shrinks it to a minimal reproducing plan.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "chaos/explorer.h"
#include "common/rng.h"

namespace sncube {
namespace {

std::size_t ClauseCount(const FaultPlan& plan) {
  return plan.kills.size() + plan.stragglers.size() +
         plan.disk_errors.size() + plan.bit_flips.size() +
         plan.torn_writes.size();
}

TEST(Chaos, RandomPlansAreDeterministicAndNeverEmpty) {
  Rng a(99), b(99);
  for (int i = 0; i < 32; ++i) {
    const FaultPlan pa = chaos::RandomPlan(a, 4);
    const FaultPlan pb = chaos::RandomPlan(b, 4);
    EXPECT_EQ(pa.ToSpec(), pb.ToSpec());
    EXPECT_FALSE(pa.empty());
    // Every generated plan round-trips through the spec grammar.
    EXPECT_EQ(FaultPlan::Parse(pa.ToSpec()).ToSpec(), pa.ToSpec());
  }
}

TEST(Chaos, SmokeSearchFindsNoIntegrityViolations) {
  chaos::ChaosOptions opts;
  opts.plans = 8;
  opts.seed = 11;
  opts.procs = {2, 4};
  opts.rows = 400;
  const chaos::ChaosReport report = chaos::RunChaosSearch(opts);
  EXPECT_EQ(report.trials, 16);
  EXPECT_TRUE(report.ok()) << report.ToJson();
  EXPECT_NE(report.ToJson().find("\"failures\":[]"), std::string::npos);
}

TEST(Chaos, ShrinksSilentCorruptionBugToMinimalPlan) {
  // verify_restore=false re-opens the silent-corruption restore path: a
  // bit-flipped checkpoint shard whose manifest line survived is restored
  // without its checksum being looked at. The explorer must catch the
  // resulting wrong-or-stuck build and shrink the plan to its essence — the
  // kill that forces a restore plus the corruption clause, nothing else.
  chaos::ChaosOptions opts;
  opts.rows = 400;
  opts.verify_restore = false;
  chaos::ChaosTrial trial(opts, 2);

  std::optional<FaultPlan> failing;
  for (std::uint64_t seed = 1; seed <= 12 && !failing.has_value(); ++seed) {
    const FaultPlan plan = FaultPlan::Parse(
        "kill:1@12;bitflip:0:0.6;slow:1x2.0;diskerr:1:0.05;"
        "tornwrite:1:0.2;seed:" + std::to_string(seed));
    if (trial.Check(plan).has_value()) failing = plan;
  }
  ASSERT_TRUE(failing.has_value())
      << "no seed reproduced the silent-corruption bug";

  const FaultPlan minimal = trial.Shrink(*failing);
  EXPECT_LE(ClauseCount(minimal), 2u) << minimal.ToSpec();
  // The shrunk plan still reproduces, and its spec round-trips (it is a
  // complete, replayable bug report).
  EXPECT_TRUE(trial.Check(minimal).has_value());
  EXPECT_EQ(FaultPlan::Parse(minimal.ToSpec()).ToSpec(), minimal.ToSpec());

  // The same minimal plan is harmless against the hardened restore path:
  // verification quarantines the damaged shard and recomputes.
  chaos::ChaosOptions hardened_opts = opts;
  hardened_opts.verify_restore = true;
  chaos::ChaosTrial hardened(hardened_opts, 2);
  EXPECT_EQ(hardened.Check(minimal), std::nullopt);
}

}  // namespace
}  // namespace sncube
