// Chaos explorer tests: the smoke search upholds the integrity invariant on
// the hardened code (every completed trial byte-identical to fault-free),
// plan generation is deterministic, and — against the deliberately
// re-opened silent-corruption hole (verify_restore=false) — the explorer
// finds a real integrity bug and shrinks it to a minimal reproducing plan.
#include <gtest/gtest.h>

#include <optional>
#include <string>

#include "chaos/explorer.h"
#include "chaos/refresh_chaos.h"
#include "chaos/serve_chaos.h"
#include "common/rng.h"

namespace sncube {
namespace {

std::size_t ClauseCount(const FaultPlan& plan) {
  return plan.kills.size() + plan.stragglers.size() +
         plan.disk_errors.size() + plan.bit_flips.size() +
         plan.torn_writes.size();
}

TEST(Chaos, RandomPlansAreDeterministicAndNeverEmpty) {
  Rng a(99), b(99);
  for (int i = 0; i < 32; ++i) {
    const FaultPlan pa = chaos::RandomPlan(a, 4);
    const FaultPlan pb = chaos::RandomPlan(b, 4);
    EXPECT_EQ(pa.ToSpec(), pb.ToSpec());
    EXPECT_FALSE(pa.empty());
    // Every generated plan round-trips through the spec grammar.
    EXPECT_EQ(FaultPlan::Parse(pa.ToSpec()).ToSpec(), pa.ToSpec());
  }
}

TEST(Chaos, SmokeSearchFindsNoIntegrityViolations) {
  chaos::ChaosOptions opts;
  opts.plans = 8;
  opts.seed = 11;
  opts.procs = {2, 4};
  opts.rows = 400;
  const chaos::ChaosReport report = chaos::RunChaosSearch(opts);
  EXPECT_EQ(report.trials, 16);
  EXPECT_TRUE(report.ok()) << report.ToJson();
  EXPECT_NE(report.ToJson().find("\"failures\":[]"), std::string::npos);
}

TEST(Chaos, ShrinksSilentCorruptionBugToMinimalPlan) {
  // verify_restore=false re-opens the silent-corruption restore path: a
  // bit-flipped checkpoint shard whose manifest line survived is restored
  // without its checksum being looked at. The explorer must catch the
  // resulting wrong-or-stuck build and shrink the plan to its essence — the
  // kill that forces a restore plus the corruption clause, nothing else.
  chaos::ChaosOptions opts;
  opts.rows = 400;
  opts.verify_restore = false;
  chaos::ChaosTrial trial(opts, 2);

  std::optional<FaultPlan> failing;
  for (std::uint64_t seed = 1; seed <= 12 && !failing.has_value(); ++seed) {
    const FaultPlan plan = FaultPlan::Parse(
        "kill:1@12;bitflip:0:0.6;slow:1x2.0;diskerr:1:0.05;"
        "tornwrite:1:0.2;seed:" + std::to_string(seed));
    if (trial.Check(plan).has_value()) failing = plan;
  }
  ASSERT_TRUE(failing.has_value())
      << "no seed reproduced the silent-corruption bug";

  const FaultPlan minimal = trial.Shrink(*failing);
  EXPECT_LE(ClauseCount(minimal), 2u) << minimal.ToSpec();
  // The shrunk plan still reproduces, and its spec round-trips (it is a
  // complete, replayable bug report).
  EXPECT_TRUE(trial.Check(minimal).has_value());
  EXPECT_EQ(FaultPlan::Parse(minimal.ToSpec()).ToSpec(), minimal.ToSpec());

  // The same minimal plan is harmless against the hardened restore path:
  // verification quarantines the damaged shard and recomputes.
  chaos::ChaosOptions hardened_opts = opts;
  hardened_opts.verify_restore = true;
  chaos::ChaosTrial hardened(hardened_opts, 2);
  EXPECT_EQ(hardened.Check(minimal), std::nullopt);
}

std::size_t ServeClauseCount(const FaultPlan& plan) {
  return plan.shard_kills.size() + plan.shard_slows.size();
}

TEST(ServeChaos, RandomServePlansAreDeterministicAndRoundTrip) {
  Rng a(7), b(7);
  for (int i = 0; i < 32; ++i) {
    const FaultPlan pa = chaos::RandomServePlan(a, 4, 200);
    const FaultPlan pb = chaos::RandomServePlan(b, 4, 200);
    EXPECT_EQ(pa.ToSpec(), pb.ToSpec());
    EXPECT_FALSE(pa.empty());
    EXPECT_EQ(FaultPlan::Parse(pa.ToSpec()).ToSpec(), pa.ToSpec());
    for (const auto& k : pa.shard_kills) {
      EXPECT_GE(k.shard, 0);
      EXPECT_LT(k.shard, 4);
      EXPECT_LT(k.from, 200u);
      if (k.until != FaultPlan::kNoEnd) EXPECT_GT(k.until, k.from);
    }
    for (const auto& s : pa.shard_slows) {
      EXPECT_GE(s.factor, 1.5);
      EXPECT_GT(s.until, s.from);
    }
  }
}

TEST(ServeChaos, SmokeSearchFindsNoWrongAnswers) {
  // The serving-tier invariant under randomized kill/slow plans: every OK
  // response bit-equals the golden single-node answer; everything else is a
  // typed error or shed load. No wrong answers, ever.
  chaos::ServeChaosOptions opts;
  opts.plans = 3;
  opts.seed = 5;
  opts.shard_counts = {2, 3};
  opts.rows = 400;
  opts.requests = 80;
  const chaos::ChaosReport report = chaos::RunServeChaosSearch(opts);
  EXPECT_EQ(report.trials, 6);
  EXPECT_TRUE(report.ok()) << report.ToJson();
}

TEST(ServeChaos, UnpinnedScatterIsCaughtAsWrongAnswer) {
  // pin_scatter_view=false re-opens the scatter composition bug: slices
  // route sub-queries independently, and two slices answering the same
  // rollup from DIFFERENT materialized views drop or double-count facts.
  // The harness must catch that as a wrong answer — proving both that the
  // invariant check has teeth and that the from_view pin is load-bearing.
  chaos::ServeChaosOptions opts;
  opts.pin_scatter_view = false;
  // Sparse views are what make local routing diverge: with cardinalities
  // near the row count, a slice can hold fewer rows of a SUPERSET view than
  // of the exact view (hash imbalance over sparse groups), so its local
  // router picks a different view than its siblings and the merged rollup
  // drops or double-counts facts. Dense views never invert that order,
  // which is exactly why this bug survives small smoke tests.
  opts.rows = 200;
  opts.cards = {40, 30, 20};
  opts.requests = 100;
  opts.workload.alpha = 0.0;  // uniform: every pooled rollup gets sampled
  opts.plans = 6;
  opts.seed = 3;
  opts.shard_counts = {4};
  const chaos::ChaosReport report = chaos::RunServeChaosSearch(opts);
  ASSERT_FALSE(report.ok()) << "unpinned scatter produced no wrong answer";
  EXPECT_NE(report.failures[0].reason.find("WRONG"), std::string::npos);
  // The shrunk reproducer is still a valid, replayable spec.
  const FaultPlan& minimal = report.failures[0].plan;
  EXPECT_EQ(FaultPlan::Parse(minimal.ToSpec()).ToSpec(), minimal.ToSpec());
  EXPECT_LE(ServeClauseCount(minimal), ServeClauseCount(report.failures[0].original));

  // The identical search with the pin in place is clean.
  chaos::ServeChaosOptions pinned = opts;
  pinned.pin_scatter_view = true;
  EXPECT_TRUE(chaos::RunServeChaosSearch(pinned).ok());
}

std::size_t RefreshClauseCount(const FaultPlan& plan) {
  return plan.refresh_kills.size() + plan.shard_kills.size() +
         plan.shard_slows.size() + plan.disk_errors.size() +
         plan.bit_flips.size() + plan.torn_writes.size();
}

TEST(RefreshChaos, RandomRefreshPlansAreDeterministicAndRoundTrip) {
  Rng a(13), b(13);
  for (int i = 0; i < 32; ++i) {
    const FaultPlan pa = chaos::RandomRefreshPlan(a, 4, 120);
    const FaultPlan pb = chaos::RandomRefreshPlan(b, 4, 120);
    EXPECT_EQ(pa.ToSpec(), pb.ToSpec());
    EXPECT_FALSE(pa.empty());
    EXPECT_EQ(FaultPlan::Parse(pa.ToSpec()).ToSpec(), pa.ToSpec());
    for (const auto& k : pa.refresh_kills) {
      EXPECT_GE(k.phase, 0);
      EXPECT_LE(k.phase, 5);
    }
  }
}

TEST(RefreshChaos, SmokeSearchFindsNoBlends) {
  // The refresh invariant under randomized coordinator kills, snapshot
  // corruption, and shard churn: every OK response — before, during, after
  // the swap, and after crash recovery — is byte-identical to the pre- or
  // post-refresh golden. Old or new, never a blend.
  chaos::RefreshChaosOptions opts;
  opts.plans = 8;
  opts.seed = 21;
  opts.shard_counts = {2, 4};
  opts.rows = 400;
  opts.requests = 100;
  const chaos::ChaosReport report = chaos::RunRefreshChaosSearch(opts);
  EXPECT_EQ(report.trials, 16);
  EXPECT_TRUE(report.ok()) << report.ToJson();
}

TEST(RefreshChaos, UnpinnedEpochBlendIsCaughtAndShrunk) {
  // pin_epoch=false re-opens the naive single-phase swap: mid-commit-loop
  // each shard answers from whatever epoch it last adopted, so a scatter
  // straddling the commit frontier mixes two snapshots. The harness must
  // catch that as a blend and shrink the plan — proving the invariant check
  // has teeth and that end-to-end epoch pinning is load-bearing.
  chaos::RefreshChaosOptions opts;
  opts.pin_epoch = false;
  opts.plans = 6;
  opts.seed = 9;
  opts.shard_counts = {2};
  opts.rows = 400;
  opts.delta_rows = 200;
  opts.requests = 100;
  opts.workload.alpha = 0.0;  // uniform: scatters get sampled mid-swap
  const chaos::ChaosReport report = chaos::RunRefreshChaosSearch(opts);
  ASSERT_FALSE(report.ok()) << "unpinned epochs produced no blend";
  EXPECT_NE(report.failures[0].reason.find("BLEND"), std::string::npos)
      << report.failures[0].reason;
  const FaultPlan& minimal = report.failures[0].plan;
  // The shrunk reproducer round-trips and is no bigger than the original —
  // the bug lives in the swap itself, so ddmin strips the fault clauses
  // down to (near) nothing.
  EXPECT_EQ(FaultPlan::Parse(minimal.ToSpec()).ToSpec(), minimal.ToSpec());
  EXPECT_LE(RefreshClauseCount(minimal),
            RefreshClauseCount(report.failures[0].original));

  // The identical search with epoch pinning in place is clean.
  chaos::RefreshChaosOptions pinned = opts;
  pinned.pin_epoch = true;
  EXPECT_TRUE(chaos::RunRefreshChaosSearch(pinned).ok());
}

}  // namespace
}  // namespace sncube
