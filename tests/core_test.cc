#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>

#include "core/merge_partitions.h"
#include "core/onedim_baseline.h"
#include "core/workpart_baseline.h"
#include "core/parallel_cube.h"
#include "core/sample_sort.h"
#include "core/sampling_array.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/cluster.h"
#include "relation/sort.h"
#include "seqcube/cube_result.h"

namespace sncube {
namespace {

// ---------------------------------------------------------------------------
// SamplingArray

TEST(SamplingArray, ExactWhileUnderCapacity) {
  SamplingArray sample(1, 100);
  for (Key k = 0; k < 50; ++k) sample.Add(std::vector<Key>{k * 2});
  EXPECT_EQ(sample.stride(), 1u);
  // Rows <= 20: keys 0,2,...,20 → 11 rows, exact at stride 1.
  EXPECT_EQ(sample.EstimateRowsLessEq(std::vector<Key>{20}), 11u);
  EXPECT_EQ(sample.EstimateRowsLessEq(std::vector<Key>{1000}), 50u);
  EXPECT_EQ(sample.EstimateRowsLessEq(std::vector<Key>{0}), 1u);
}

TEST(SamplingArray, StrideDoublesAndStaysAccurate) {
  const std::size_t capacity = 64;
  SamplingArray sample(1, capacity);
  const std::size_t n = 10000;
  for (Key k = 0; k < n; ++k) sample.Add(std::vector<Key>{k});
  EXPECT_GT(sample.stride(), 1u);
  EXPECT_LE(sample.stride(), 2 * n / capacity);
  for (Key probe : {0u, 777u, 5000u, 9999u}) {
    const std::size_t actual = probe + 1;
    const std::size_t est = sample.EstimateRowsLessEq(std::vector<Key>{probe});
    EXPECT_NEAR(static_cast<double>(est), static_cast<double>(actual),
                static_cast<double>(sample.ErrorBound()))
        << "probe=" << probe;
  }
}

TEST(SamplingArray, MultiColumnLexicographic) {
  SamplingArray sample(2, 16);
  for (Key a = 0; a < 10; ++a) {
    for (Key b = 0; b < 10; ++b) sample.Add(std::vector<Key>{a, b});
  }
  const auto est = sample.EstimateRowsLessEq(std::vector<Key>{4, 9});
  EXPECT_NEAR(static_cast<double>(est), 50.0,
              static_cast<double>(sample.ErrorBound()));
}

TEST(SamplingArray, SkewedDuplicatesStillBounded) {
  SamplingArray sample(1, 32);
  // 5000 rows of key 7 then 5000 of key 9.
  for (int i = 0; i < 5000; ++i) sample.Add(std::vector<Key>{7});
  for (int i = 0; i < 5000; ++i) sample.Add(std::vector<Key>{9});
  EXPECT_NEAR(
      static_cast<double>(sample.EstimateRowsLessEq(std::vector<Key>{7})),
      5000.0, static_cast<double>(sample.ErrorBound()));
  EXPECT_NEAR(
      static_cast<double>(sample.EstimateRowsLessEq(std::vector<Key>{8})),
      5000.0, static_cast<double>(sample.ErrorBound()));
}

// ---------------------------------------------------------------------------
// RelativeImbalance

TEST(Imbalance, Definition) {
  EXPECT_DOUBLE_EQ(RelativeImbalance({100, 100, 100}), 0.0);
  // avg 100; max deviation (130-100)/100.
  EXPECT_DOUBLE_EQ(RelativeImbalance({70, 100, 130}), 0.3);
  EXPECT_DOUBLE_EQ(RelativeImbalance({0, 0}), 0.0);
  // One empty, one full: avg 50 → max((100-50)/50,(50-0)/50) = 1.
  EXPECT_DOUBLE_EQ(RelativeImbalance({0, 100}), 1.0);
}

// ---------------------------------------------------------------------------
// AdaptiveSampleSort

struct SortOutcome {
  std::vector<Relation> shards;
  std::vector<SampleSortStats> stats;
};

SortOutcome RunSampleSort(int p, const std::vector<Relation>& inputs,
                          const std::vector<int>& cols, double gamma) {
  Cluster cluster(p);
  SortOutcome out;
  out.shards.resize(p);
  out.stats.resize(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    SampleSortStats stats;
    Relation shard = AdaptiveSampleSort(comm, Relation(inputs[comm.rank()]),
                                        cols, gamma, &stats);
    std::lock_guard<std::mutex> lock(mu);
    out.shards[comm.rank()] = std::move(shard);
    out.stats[comm.rank()] = stats;
  });
  return out;
}

void ExpectGloballySorted(const std::vector<Relation>& shards,
                          const std::vector<int>& cols) {
  for (std::size_t r = 0; r < shards.size(); ++r) {
    EXPECT_TRUE(IsSorted(shards[r], cols)) << "rank " << r;
  }
  const Relation* prev = nullptr;
  for (const auto& shard : shards) {
    if (shard.empty()) continue;
    if (prev != nullptr) {
      EXPECT_LE(CompareRows(*prev, prev->size() - 1, cols, shard, 0, cols), 0);
    }
    prev = &shard;
  }
}

TEST(SampleSort, SortsAndBalancesUniform) {
  const int p = 4;
  Rng rng(77);
  std::vector<Relation> inputs(p, Relation(2));
  std::size_t total = 0;
  for (int r = 0; r < p; ++r) {
    const int n = 400 + static_cast<int>(rng.Below(200));
    for (int i = 0; i < n; ++i) {
      inputs[r].Append(std::vector<Key>{static_cast<Key>(rng.Below(1000)),
                                        static_cast<Key>(rng.Below(10))},
                       1);
    }
    total += inputs[r].size();
  }
  const auto cols = IdentityOrder(2);
  const auto out = RunSampleSort(p, inputs, cols, 0.01);

  ExpectGloballySorted(out.shards, cols);
  std::size_t got = 0;
  std::vector<std::uint64_t> sizes;
  for (const auto& s : out.shards) {
    got += s.size();
    sizes.push_back(s.size());
  }
  EXPECT_EQ(got, total);
  // Either the first h-relation was balanced, or the shift ran and made it
  // perfectly even.
  if (out.stats[0].shifted) {
    EXPECT_LE(RelativeImbalance(sizes), 0.01 + 1e-9);
  } else {
    EXPECT_LE(out.stats[0].imbalance_before_shift, 0.01 + 1e-9);
  }
}

TEST(SampleSort, MultisetPreserved) {
  const int p = 3;
  Rng rng(78);
  std::vector<Relation> inputs(p, Relation(1));
  Relation all(1);
  for (int r = 0; r < p; ++r) {
    for (int i = 0; i < 300; ++i) {
      const Key k = static_cast<Key>(rng.Below(50));
      inputs[r].Append(std::vector<Key>{k}, r * 1000 + i);
      all.Append(std::vector<Key>{k}, r * 1000 + i);
    }
  }
  const std::vector<int> cols{0};
  const auto out = RunSampleSort(p, inputs, cols, 0.01);
  Relation combined(1);
  for (const auto& s : out.shards) combined.Concat(Relation(s));
  // Same multiset of (key, measure) pairs.
  auto normalize = [](const Relation& rel) {
    std::vector<std::pair<Key, Measure>> v;
    for (std::size_t i = 0; i < rel.size(); ++i) {
      v.emplace_back(rel.key(i, 0), rel.measure(i));
    }
    std::sort(v.begin(), v.end());
    return v;
  };
  EXPECT_EQ(normalize(combined), normalize(all));
}

TEST(SampleSort, SkewTriggersShift) {
  // Every row has the same key: the first h-relation dumps everything on one
  // rank; the shift must rebalance to within a row.
  const int p = 4;
  std::vector<Relation> inputs(p, Relation(1));
  for (int r = 0; r < p; ++r) {
    for (int i = 0; i < 250; ++i) inputs[r].Append(std::vector<Key>{42}, 1);
  }
  const std::vector<int> cols{0};
  const auto out = RunSampleSort(p, inputs, cols, 0.01);
  EXPECT_TRUE(out.stats[0].shifted);
  for (const auto& s : out.shards) EXPECT_EQ(s.size(), 250u);
}

TEST(SampleSort, EmptyInputsEverywhere) {
  const int p = 3;
  std::vector<Relation> inputs(p, Relation(1));
  const std::vector<int> cols{0};
  const auto out = RunSampleSort(p, inputs, cols, 0.01);
  for (const auto& s : out.shards) EXPECT_TRUE(s.empty());
}

TEST(SampleSort, SingleProcessor) {
  std::vector<Relation> inputs(1, Relation(1));
  inputs[0].Append(std::vector<Key>{3}, 1);
  inputs[0].Append(std::vector<Key>{1}, 2);
  const std::vector<int> cols{0};
  const auto out = RunSampleSort(1, inputs, cols, 0.01);
  ASSERT_EQ(out.shards[0].size(), 2u);
  EXPECT_EQ(out.shards[0].key(0, 0), 1u);
}

// ---------------------------------------------------------------------------
// Parallel cube: the master end-to-end property.

struct ParallelRun {
  std::vector<CubeResult> shards;  // per rank
  std::vector<ParallelCubeStats> stats;
};

ParallelRun RunParallelCube(int p, const DatasetSpec& spec,
                            const std::vector<ViewId>& selected,
                            const ParallelCubeOptions& opts) {
  const Schema schema = spec.MakeSchema();
  Cluster cluster(p);
  ParallelRun run;
  run.shards.resize(p);
  run.stats.resize(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, p, comm.rank());
    ParallelCubeStats stats;
    CubeResult cube =
        BuildParallelCube(comm, raw, schema, selected, opts, &stats);
    std::lock_guard<std::mutex> lock(mu);
    run.shards[comm.rank()] = std::move(cube);
    run.stats[comm.rank()] = stats;
  });
  return run;
}

// Concatenated shards must equal the brute-force group-by of the whole
// data set, with no group straddling a rank boundary.
void ExpectCubeCorrect(const ParallelRun& run, const DatasetSpec& spec,
                       const std::vector<ViewId>& selected, AggFn fn) {
  const Relation whole = GenerateDataset(spec);
  for (ViewId v : selected) {
    Relation combined(v.dim_count());
    std::size_t nonempty = 0;
    const ViewResult* prev = nullptr;
    for (const auto& shard : run.shards) {
      const auto it = shard.views.find(v);
      ASSERT_NE(it, shard.views.end()) << "missing view on a rank";
      const ViewResult& vr = it->second;
      const auto cols = ColumnsOf(v, vr.order);
      EXPECT_TRUE(IsSorted(vr.rel, cols));
      if (!vr.rel.empty()) {
        if (prev != nullptr && !prev->rel.empty()) {
          // Strict inequality: groups never straddle rank boundaries.
          const auto pcols = ColumnsOf(v, prev->order);
          EXPECT_LT(CompareRows(prev->rel, prev->rel.size() - 1, pcols,
                                vr.rel, 0, cols),
                    0)
              << "group straddles ranks, view mask=" << v.mask();
        }
        prev = &it->second;
        ++nonempty;
      }
      combined.Concat(Relation(vr.rel));
    }
    const Relation expected = BruteForceView(whole, v, fn);
    const Relation actual = CanonicalizeRows(combined);
    ASSERT_EQ(actual.size(), expected.size()) << "view mask=" << v.mask();
    EXPECT_EQ(actual, expected) << "view mask=" << v.mask();
    (void)nonempty;
  }
}

DatasetSpec CubeSpec(std::int64_t rows, std::uint64_t seed,
                     std::vector<double> alphas = {}) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.cardinalities = {40, 12, 6, 4};
  spec.alphas = std::move(alphas);
  spec.seed = seed;
  return spec;
}

TEST(ParallelCube, FullCubeMatchesBruteForceAcrossP) {
  const auto selected = AllViews(4);
  for (int p : {1, 2, 4, 5}) {
    const auto spec = CubeSpec(4000, 100 + p);
    ParallelCubeOptions opts;
    const auto run = RunParallelCube(p, spec, selected, opts);
    ExpectCubeCorrect(run, spec, selected, AggFn::kSum);
  }
}

TEST(ParallelCube, SkewedDataStillCorrect) {
  const auto selected = AllViews(4);
  for (double alpha : {1.0, 3.0}) {
    const auto spec = CubeSpec(3000, 200, {alpha, alpha, 0.0, 0.0});
    const auto run = RunParallelCube(4, spec, selected, ParallelCubeOptions{});
    ExpectCubeCorrect(run, spec, selected, AggFn::kSum);
  }
}

TEST(ParallelCube, LocalTreeModeCorrect) {
  const auto selected = AllViews(4);
  const auto spec = CubeSpec(3000, 300, {2.0, 0.0, 0.0, 0.0});
  ParallelCubeOptions opts;
  opts.tree_mode = TreeMode::kLocal;
  opts.estimator = EstimatorKind::kFm;
  const auto run = RunParallelCube(4, spec, selected, opts);
  ExpectCubeCorrect(run, spec, selected, AggFn::kSum);
}

TEST(ParallelCube, PartialCubeSelections) {
  const std::vector<ViewId> selected{
      ViewId::Full(4), ViewId::FromDims({0, 2}), ViewId::FromDims({1, 3}),
      ViewId::FromDims({2}), ViewId::Empty()};
  for (auto strategy : {PartialStrategy::kPrunedPipesort,
                        PartialStrategy::kGreedyLattice}) {
    const auto spec = CubeSpec(2500, 400);
    ParallelCubeOptions opts;
    opts.partial_strategy = strategy;
    const auto run = RunParallelCube(3, spec, selected, opts);
    ExpectCubeCorrect(run, spec, selected, AggFn::kSum);
    // No auxiliary views in the output.
    for (const auto& shard : run.shards) {
      EXPECT_EQ(shard.views.size(), selected.size());
    }
  }
}

TEST(ParallelCube, ForceCase3AblationCorrect) {
  const auto selected = AllViews(4);
  const auto spec = CubeSpec(2000, 500);
  ParallelCubeOptions opts;
  opts.force_case3 = true;
  const auto run = RunParallelCube(4, spec, selected, opts);
  ExpectCubeCorrect(run, spec, selected, AggFn::kSum);
  EXPECT_EQ(run.stats[0].merge.case2_views, 0);
}

TEST(ParallelCube, GammaSweepCorrect) {
  const auto selected = AllViews(4);
  for (double gamma : {0.01, 0.05, 0.5}) {
    const auto spec = CubeSpec(2000, 600);
    ParallelCubeOptions opts;
    opts.gamma_merge = gamma;
    const auto run = RunParallelCube(4, spec, selected, opts);
    ExpectCubeCorrect(run, spec, selected, AggFn::kSum);
  }
}

TEST(ParallelCube, MergeCasesAllExercised) {
  // d=4 cube, moderate skew: expect a mix of prefix (Case 1) and non-prefix
  // views, with Case 2 dominating on balanced data.
  const auto spec = CubeSpec(4000, 700);
  const auto run =
      RunParallelCube(4, spec, AllViews(4), ParallelCubeOptions{});
  const auto& merge = run.stats[0].merge;
  EXPECT_GT(merge.case1_views, 0);
  EXPECT_GT(merge.case2_views + merge.case3_views, 0);
  // Full cube of d=4: 16 views across 4 partitions.
  EXPECT_EQ(merge.case1_views + merge.case2_views + merge.case3_views, 16);
}

TEST(ParallelCube, SimulatedTimeDropsWithP) {
  // Needs enough local computation to amortize communication — the paper
  // makes the same observation about small inputs (Section 4.1), and at
  // n = 6000 the simulated cluster indeed shows no speedup.
  const auto selected = AllViews(4);
  DatasetSpec spec = CubeSpec(60000, 800);
  double t2 = 0;
  double t8 = 0;
  {
    Cluster cluster(2);
    cluster.Run([&](Comm& comm) {
      const Relation raw = GenerateSlice(spec, 2, comm.rank());
      BuildParallelCube(comm, raw, spec.MakeSchema(), selected);
    });
    t2 = cluster.SimTimeSeconds();
  }
  {
    Cluster cluster(8);
    cluster.Run([&](Comm& comm) {
      const Relation raw = GenerateSlice(spec, 8, comm.rank());
      BuildParallelCube(comm, raw, spec.MakeSchema(), selected);
    });
    t8 = cluster.SimTimeSeconds();
  }
  EXPECT_LT(t8, t2);
}

TEST(ParallelCube, MinMaxAggregates) {
  DatasetSpec spec = CubeSpec(1500, 900);
  const auto selected = AllViews(4);
  for (AggFn fn : {AggFn::kMin, AggFn::kMax}) {
    const Schema schema = spec.MakeSchema();
    Cluster cluster(3);
    std::vector<CubeResult> shards(3);
    std::mutex mu;
    cluster.Run([&](Comm& comm) {
      Relation raw = GenerateSlice(spec, 3, comm.rank());
      // Distinguishable measures derived from row content.
      for (std::size_t r = 0; r < raw.size(); ++r) {
        raw.measure(r) = static_cast<Measure>((raw.key(r, 0) * 7 + r) % 101) - 50;
      }
      ParallelCubeOptions opts;
      opts.fn = fn;
      CubeResult cube = BuildParallelCube(comm, raw, schema, selected, opts);
      std::lock_guard<std::mutex> lock(mu);
      shards[comm.rank()] = std::move(cube);
    });
    // Rebuild the whole measured data set the same way.
    Relation whole(4);
    for (int r = 0; r < 3; ++r) {
      Relation slice = GenerateSlice(spec, 3, r);
      for (std::size_t i = 0; i < slice.size(); ++i) {
        slice.measure(i) =
            static_cast<Measure>((slice.key(i, 0) * 7 + i) % 101) - 50;
      }
      whole.Concat(std::move(slice));
    }
    for (ViewId v : selected) {
      Relation combined(v.dim_count());
      for (const auto& shard : shards) {
        combined.Concat(Relation(shard.views.at(v).rel));
      }
      EXPECT_EQ(CanonicalizeRows(combined), BruteForceView(whole, v, fn))
          << "view mask=" << v.mask();
    }
  }
}

// ---------------------------------------------------------------------------
// One-dimension baseline

TEST(OneDimBaseline, CorrectButImbalancedUnderSkew) {
  DatasetSpec spec;
  spec.rows = 3000;
  spec.cardinalities = {8, 6, 4};  // |D0| = 8 with p = 4
  spec.alphas = {2.5, 0.0, 0.0};
  spec.seed = 1000;
  const Schema schema = spec.MakeSchema();
  const int p = 4;
  Cluster cluster(p);
  std::vector<CubeResult> shards(p);
  std::vector<OneDimStats> stats(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, p, comm.rank());
    OneDimStats st;
    CubeResult cube = OneDimPartitionCube(comm, raw, schema, AggFn::kSum, &st);
    std::lock_guard<std::mutex> lock(mu);
    shards[comm.rank()] = std::move(cube);
    stats[comm.rank()] = st;
  });

  const Relation whole = GenerateDataset(spec);
  for (ViewId v : AllViews(3)) {
    Relation combined(v.dim_count());
    for (const auto& shard : shards) {
      combined.Concat(Relation(shard.views.at(v).rel));
    }
    EXPECT_EQ(CanonicalizeRows(combined), BruteForceView(whole, v, AggFn::kSum))
        << "view mask=" << v.mask();
  }
  // Zipf(2.5) on D0 concentrates most rows on the rank owning value 0.
  EXPECT_GT(stats[0].partition_imbalance, 0.5);
  EXPECT_GT(stats[0].merged_views, 0);
}

TEST(WorkPartitionBaseline, CorrectAndSingleOwnerPerView) {
  DatasetSpec spec;
  spec.rows = 4000;
  spec.cardinalities = {16, 8, 6, 4};
  spec.seed = 1100;
  const Schema schema = spec.MakeSchema();
  const Relation whole = GenerateDataset(spec);
  const int p = 4;

  Cluster cluster(p);
  std::vector<CubeResult> shards(p);
  std::vector<WorkPartitionStats> stats(p);
  std::mutex mu;
  cluster.Run([&](Comm& comm) {
    WorkPartitionStats st;
    CubeResult cube = WorkPartitionCube(comm, whole, schema, AggFn::kSum, &st);
    std::lock_guard<std::mutex> lock(mu);
    shards[static_cast<std::size_t>(comm.rank())] = std::move(cube);
    stats[static_cast<std::size_t>(comm.rank())] = st;
  });

  for (ViewId v : AllViews(4)) {
    int owners = 0;
    Relation combined(v.dim_count());
    for (const auto& shard : shards) {
      const ViewResult& vr = shard.views.at(v);
      if (!vr.rel.empty()) {
        ++owners;
        combined.Concat(Relation(vr.rel));
      }
    }
    // Whole views on exactly one processor (no distribution — the family's
    // drawback); content exact.
    EXPECT_LE(owners, 1) << "view mask=" << v.mask();
    EXPECT_EQ(CanonicalizeRows(combined),
              BruteForceView(whole, v, AggFn::kSum))
        << "view mask=" << v.mask();
  }
  EXPECT_GT(stats[0].pipelines, 1);
  // LPT on 4 ranks with several pipelines should be reasonably balanced.
  EXPECT_LT(stats[0].estimated_imbalance, 1.0);
}

TEST(WorkPartitionBaseline, DeterministicAssignmentAcrossRanks) {
  DatasetSpec spec;
  spec.rows = 1000;
  spec.cardinalities = {8, 4, 3};
  spec.seed = 1101;
  const Schema schema = spec.MakeSchema();
  const Relation whole = GenerateDataset(spec);
  Cluster cluster(3);
  std::vector<WorkPartitionStats> stats(3);
  cluster.Run([&](Comm& comm) {
    WorkPartitionStats st;
    WorkPartitionCube(comm, whole, schema, AggFn::kSum, &st);
    stats[static_cast<std::size_t>(comm.rank())] = st;
  });
  EXPECT_EQ(stats[0].pipelines, stats[1].pipelines);
  EXPECT_DOUBLE_EQ(stats[0].estimated_imbalance, stats[2].estimated_imbalance);
}

}  // namespace
}  // namespace sncube
