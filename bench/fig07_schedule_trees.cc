// Figure 7: local vs global schedule trees.
//
// Paper setup: n = 1,000,000; d = 8; cards 256..6; alpha = 0; k = 100%.
// Paper result (Section 2.3 and Figure 7): the GLOBAL schedule tree wins —
// locally-optimal trees leave views of the same partition in different sort
// orders on different processors, and the re-sorts the merge then needs cost
// far more than the slight suboptimality of one shared tree. (Section 4.2
// contains one sentence claiming the opposite; it contradicts the paper's
// own Section 2.3, conclusion and figure, and is evidently a typo —
// DESIGN.md discusses this.)
//
// Both modes here use the data-driven FM estimator so local trees genuinely
// differ across processors; skew on the leading dimensions makes the local
// data distributions diverge.
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const auto ps = ProcessorSweep();
  DatasetSpec spec = DatasetSpec::PaperDefault(n);
  spec.alphas = {1.0, 1.0, 0.5, 0.0, 0.0, 0.0, 0.0, 0.0};
  spec.seed = 71;
  const auto selected = AllViews(8);

  std::vector<std::vector<double>> times(2);
  std::vector<int> resorted(ps.size(), 0);
  RunResult breakdown[2];  // per tree mode, at the most processors
  for (std::size_t mode = 0; mode < 2; ++mode) {
    ParallelCubeOptions opts;
    opts.tree_mode = (mode == 0) ? TreeMode::kGlobal : TreeMode::kLocal;
    opts.estimator = EstimatorKind::kFm;
    for (std::size_t i = 0; i < ps.size(); ++i) {
      RunResult result = RunParallel(spec, ps[i], selected, opts);
      times[mode].push_back(result.sim_seconds);
      if (mode == 1) resorted[i] = result.merge.resorted_views;
      breakdown[mode] = std::move(result);
    }
  }
  const double t1 = RunSequentialSeconds(spec, selected);

  char title[256];
  std::snprintf(title, sizeof(title),
                "# Figure 7: global vs local schedule trees, n=%lld, d=8, "
                "FM estimates, skewed leading dims",
                static_cast<long long>(n));
  PrintTimePanel(title, {"global tree", "local trees"}, ps, times);
  PrintSpeedupPanel({"global tree", "local trees"}, ps, {t1, t1}, times);

  std::printf("\nviews needing a merge-time re-sort under local trees:\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("  p=%-3d %d of 256\n", ps[i], resorted[i]);
  }
  PrintPhaseBreakdown("global tree, p=" + std::to_string(ps.back()),
                      breakdown[0]);
  PrintPhaseBreakdown("local trees, p=" + std::to_string(ps.back()),
                      breakdown[1]);
  return 0;
}
