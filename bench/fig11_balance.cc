// Figure 11: the balance-threshold trade-off.
//
// Paper setup: n = 1,000,000; d = 8; cards 256..6; alpha = 0; merge balance
// threshold gamma = 3%, 5%, 7%. Smaller gamma means better-balanced output
// views (good for later parallel queries) at the cost of more Case-3
// re-sorts and data movement during construction. Paper result: the effect
// on construction time is real but small; 3% is a good default.
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const auto ps = ProcessorSweep();
  DatasetSpec spec = DatasetSpec::PaperDefault(n);
  spec.seed = 111;
  const auto selected = AllViews(8);
  const double t1 = RunSequentialSeconds(spec, selected);

  std::vector<std::string> names;
  std::vector<std::vector<double>> times;
  std::vector<std::vector<std::uint64_t>> merge_mb;
  RunResult tightest;  // gamma = 3% at the most processors
  for (double gamma : {0.03, 0.05, 0.07}) {
    names.push_back(std::to_string(static_cast<int>(gamma * 100)) + "% thr");
    ParallelCubeOptions opts;
    opts.gamma_merge = gamma;
    std::vector<double> series;
    std::vector<std::uint64_t> mb;
    for (int p : ps) {
      RunResult result = RunParallel(spec, p, selected, opts);
      series.push_back(result.sim_seconds);
      mb.push_back(result.bytes_merge);
      if (gamma == 0.03) tightest = std::move(result);
    }
    times.push_back(std::move(series));
    merge_mb.push_back(std::move(mb));
  }

  char title[256];
  std::snprintf(title, sizeof(title),
                "# Figure 11: balance thresholds, n=%lld, d=8, cards 256..6, "
                "alpha=0",
                static_cast<long long>(n));
  PrintTimePanel(title, names, ps, times);
  PrintSpeedupPanel(names, ps, {t1, t1, t1}, times);

  std::printf("\nmerge communication (MB):\n%-6s", "p");
  for (const auto& name : names) std::printf("  %10s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("%-6d", ps[i]);
    for (const auto& mb : merge_mb) {
      std::printf("  %10.2f", mb[i] / 1048576.0);
    }
    std::printf("\n");
  }
  PrintPhaseBreakdown("gamma=3%, p=" + std::to_string(ps.back()), tightest);
  return 0;
}
