// serve_load — closed-loop load driver for the concurrent serving layer.
//
// Builds a cube in memory, then replays a Zipf-skewed query mix (the hot
// dashboard-traffic model of serve/workload.h) against CubeServer with a
// configurable number of closed-loop clients: each client issues its next
// query only after the previous answer returns, the classic closed-loop
// throughput/latency experiment. A single-threaded engine loop over the
// same query sequence is the baseline, so the headline number is the
// serving layer's speedup over one thread — worker parallelism plus the
// sharded result cache.
//
// Emits BENCH_serve.json: one JSON record with throughput, speedup, cache
// hit rate, rejection count, and p50/p95/p99 latency. Knobs (env):
//   SNCUBE_SERVE_WORKERS  worker threads      (default 8)
//   SNCUBE_SERVE_CLIENTS  closed-loop clients (default 16)
//   SNCUBE_SERVE_QUERIES  total queries       (default 30000)
//   SNCUBE_SERVE_ALPHA    query-popularity Zipf exponent (default 1.0)
//   SNCUBE_SCALE          scales the cube's row count as everywhere else
//
// A second phase — the CHURN bench — reruns the same mix through the
// resilient sharded tier (ShardSet + Router, DESIGN.md §12) under a seeded
// fault plan that kills one shard and slows another mid-run, and verifies
// the router's contract live: every kOk answer is compared bit-for-bit
// against a precomputed golden answer for its pool query, so the headline
// number is wrong_answers == 0 under churn. Emits BENCH_serve_shard.json
// with per-outcome counts and the router's ok/error latency quantiles.
// Extra knob: SNCUBE_SERVE_SHARDS (default 4).
//
// A third phase — the REFRESH bench — reruns the mix through a fresh
// fault-free sharded tier while a background RefreshCoordinator ingests
// deterministic deltas and two-phase-swaps new snapshot epochs in
// mid-run (DESIGN.md §14). Per-epoch golden answers are precomputed by
// rolling the same deltas offline, and every kOk answer must bit-match
// SOME epoch's golden — old or new, never a blend — so the headline
// number is again wrong_answers == 0. Emits BENCH_refresh.json. Extra
// knob: SNCUBE_SERVE_REFRESHES (default 4).
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "common/env.h"
#include "common/timer.h"
#include "data/generator.h"
#include "lattice/lattice.h"
#include "net/fault.h"
#include "query/engine.h"
#include "refresh/delta.h"
#include "refresh/refresh.h"
#include "seqcube/seq_cube.h"
#include "serve/query_key.h"
#include "serve/router.h"
#include "serve/server.h"
#include "serve/shard_set.h"
#include "serve/workload.h"

using namespace sncube;

int main() {
  // A mid-size cube: big enough that engine execution costs real time,
  // small enough to build in seconds inside a container.
  DatasetSpec spec;
  spec.rows = BenchRows(200000, 1000000);
  spec.cardinalities = {256, 128, 64, 32, 16, 8};
  spec.seed = 42;
  const Relation raw = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  const CubeResult cube = SequentialCube(raw, schema, AllViews(schema.dims()));
  std::printf("cube: %llu rows across %zu views\n",
              static_cast<unsigned long long>(cube.TotalRows()),
              cube.views.size());

  WorkloadSpec wspec;
  wspec.alpha = EnvDouble("SNCUBE_SERVE_ALPHA", 1.0);
  wspec.pool_size = 256;
  const QueryMix mix(cube, schema, wspec);

  const int workers = static_cast<int>(EnvInt("SNCUBE_SERVE_WORKERS", 8));
  const int clients = static_cast<int>(EnvInt("SNCUBE_SERVE_CLIENTS", 16));
  const std::int64_t queries = EnvInt("SNCUBE_SERVE_QUERIES", 30000);

  // Baseline: one thread, bare engine, same popularity distribution.
  // Capped so cold large scans don't make the baseline take minutes.
  const std::int64_t base_n = std::min<std::int64_t>(queries, 5000);
  const CubeQueryEngine engine(cube);
  double base_qps = 0;
  {
    Rng rng(7);
    WallTimer t;
    for (std::int64_t i = 0; i < base_n; ++i) {
      engine.Execute(mix.Sample(rng));
    }
    base_qps = static_cast<double>(base_n) / t.Seconds();
  }
  std::printf("baseline single-thread engine: %.0f q/s\n", base_qps);

  ServerOptions opts;
  opts.workers = workers;
  opts.queue_depth = 1024;
  opts.cache_bytes = 256u << 20;
  CubeServer server(cube, opts);

  // Warm the cache: one pass over the whole pool so the measured window
  // exercises the steady state ("warm cache" in the acceptance criterion).
  for (const Query& q : mix.pool()) server.Execute(q);

  WallTimer timer;
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      Rng rng(1000003ULL * static_cast<std::uint64_t>(c + 1));
      const std::int64_t n =
          queries / clients + (c < queries % clients ? 1 : 0);
      for (std::int64_t i = 0; i < n; ++i) {
        server.Execute(mix.Sample(rng));
      }
    });
  }
  for (auto& t : threads) t.join();
  const double wall_s = timer.Seconds();
  server.Shutdown();

  const StatsSnapshot stats = server.Stats();
  const double qps = static_cast<double>(queries) / wall_s;
  const double speedup = qps / base_qps;
  std::printf("served %lld queries in %.3f s: %.0f q/s (%.1fx single-thread),"
              " hit rate %.3f, p50 %.0f us, p95 %.0f us, p99 %.0f us,"
              " rejected %llu\n",
              static_cast<long long>(queries), wall_s, qps, speedup,
              stats.hit_rate(), stats.latency.p50_us, stats.latency.p95_us,
              stats.latency.p99_us,
              static_cast<unsigned long long>(stats.rejected));

  std::ofstream os("BENCH_serve.json");
  char buf[512];
  std::snprintf(buf, sizeof buf,
                "{\"bench\":\"serve_load\",\"workers\":%d,\"clients\":%d,"
                "\"queries\":%lld,\"alpha\":%.2f,\"wall_s\":%.4f,"
                "\"qps\":%.0f,\"single_thread_qps\":%.0f,\"speedup\":%.2f,",
                workers, clients, static_cast<long long>(queries),
                wspec.alpha, wall_s, qps, base_qps, speedup);
  os << buf << "\"stats\":" << stats.ToJson() << "}\n";
  std::printf("wrote BENCH_serve.json\n");

  // ---- Churn phase: the sharded tier under kill/slow faults. ----
  const int shards = static_cast<int>(EnvInt("SNCUBE_SERVE_SHARDS", 4));

  // Golden answers for the whole pool from the single full-cube engine;
  // every router answer is checked against these during the run.
  std::map<std::string, Relation> golden;
  for (const Query& q : mix.pool()) {
    Query bare = q;
    bare.from_view.reset();
    golden.emplace(CanonicalQueryKey(q), engine.Execute(bare).rel);
  }

  // Seeded churn: shard 1 dies for the middle third of the run (then comes
  // back with cold caches), shard 2 runs 3x slow for the first two thirds.
  // Windows key on router request sequence numbers, so the plan means the
  // same thing at any request rate.
  char plan_spec[128];
  std::snprintf(plan_spec, sizeof plan_spec,
                "shardkill:1:%lld-%lld;shardslow:2:0-%lld:3.0;seed:9",
                static_cast<long long>(queries / 3),
                static_cast<long long>(2 * queries / 3),
                static_cast<long long>(2 * queries / 3));

  ShardSetOptions sopts;
  sopts.shards = shards;
  sopts.server.workers = std::max(1, workers / 2);
  sopts.server.queue_depth = 1024;
  sopts.server.cache_bytes = (256u << 20) / static_cast<unsigned>(shards);
  ShardSet shard_set(cube, sopts, FaultPlan::Parse(plan_spec));

  RouterOptions ropts;
  ropts.per_try_us = 200000;
  ropts.max_tries = 3;
  ropts.hedge_delay_us = 20000;
  ropts.retry_budget_ratio = 0.5;
  ropts.breaker.failure_threshold = 5;
  ropts.breaker.cooldown_us = 50000;
  ropts.probe_every = 64;
  Router router(shard_set, ropts);

  std::atomic<std::uint64_t> wrong{0};
  WallTimer churn_timer;
  std::vector<std::thread> churn_threads;
  churn_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    churn_threads.emplace_back([&, c] {
      Rng rng(2000003ULL * static_cast<std::uint64_t>(c + 1));
      const std::int64_t n =
          queries / clients + (c < queries % clients ? 1 : 0);
      for (std::int64_t i = 0; i < n; ++i) {
        const Query& q = mix.Sample(rng);
        const RouterResult r = router.Execute(q);
        if (r.outcome == RouterOutcome::kOk &&
            !(r.answer->rel == golden.at(CanonicalQueryKey(q)))) {
          wrong.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& t : churn_threads) t.join();
  const double churn_wall_s = churn_timer.Seconds();
  const RouterStatsSnapshot rstats = router.Stats();
  std::uint64_t invalidations = 0;
  for (int s = 0; s < shards; ++s) {
    invalidations += shard_set.primary_server(s).Stats().cache.invalidations;
    invalidations += shard_set.replica_server(s).Stats().cache.invalidations;
  }
  shard_set.Shutdown();

  std::printf("churn (%d shards, plan \"%s\"): %llu/%llu ok, %llu retries, "
              "%llu hedges, %llu shed, wrong answers %llu, ok p99 %.0f us\n",
              shards, plan_spec,
              static_cast<unsigned long long>(rstats.ok),
              static_cast<unsigned long long>(rstats.requests),
              static_cast<unsigned long long>(rstats.retries),
              static_cast<unsigned long long>(rstats.hedges),
              static_cast<unsigned long long>(rstats.shed),
              static_cast<unsigned long long>(wrong.load()),
              rstats.ok_latency.p99_us);

  std::ofstream shard_os("BENCH_serve_shard.json");
  std::snprintf(buf, sizeof buf,
                "{\"bench\":\"serve_shard\",\"shards\":%d,\"clients\":%d,"
                "\"queries\":%lld,\"plan\":\"%s\",\"wall_s\":%.4f,"
                "\"qps\":%.0f,\"wrong_answers\":%llu,"
                "\"cache_invalidations\":%llu,",
                shards, clients, static_cast<long long>(queries), plan_spec,
                churn_wall_s,
                static_cast<double>(queries) / churn_wall_s,
                static_cast<unsigned long long>(wrong.load()),
                static_cast<unsigned long long>(invalidations));
  shard_os << buf << "\"router\":" << rstats.ToJson() << "}\n";
  std::printf("wrote BENCH_serve_shard.json\n");

  // ---- Refresh phase: online epoch swaps under live traffic. ----
  const int refreshes = static_cast<int>(EnvInt("SNCUBE_SERVE_REFRESHES", 4));
  const std::int64_t delta_rows = std::max<std::int64_t>(1, spec.rows / 10);
  // The k-th refresh ingests this exact delta — deterministic, so the
  // offline golden roll below and the live coordinator see identical rows.
  const auto refresh_delta = [&](int e) {
    DatasetSpec dspec = spec;
    dspec.rows = delta_rows;
    dspec.seed = 4242 + static_cast<std::uint64_t>(e);
    return GenerateDataset(dspec);
  };

  // Per-epoch golden answers for the whole pool, rolled one epoch at a
  // time (only one cube held in memory beyond the base).
  std::map<std::string, std::vector<Relation>> refresh_golden;
  {
    CubeResult rolling;
    const CubeResult* cur = &cube;  // epoch 0 = the base cube
    for (int e = 0; e <= refreshes; ++e) {
      if (e > 0) {
        const Relation delta = refresh_delta(e);
        rolling = MergeDeltaCube(
            *cur, ComputeDeltaCube(delta, schema, AffectedViews(*cur, delta)));
        cur = &rolling;
      }
      const CubeQueryEngine epoch_engine(*cur);
      for (const Query& q : mix.pool()) {
        Query bare = q;
        bare.from_view.reset();
        refresh_golden[CanonicalQueryKey(q)].push_back(
            epoch_engine.Execute(bare).rel);
      }
    }
  }

  ShardSet refresh_set(cube, sopts, FaultPlan());
  Router refresh_router(refresh_set, ropts);

  const std::string snap_dir =
      (std::filesystem::temp_directory_path() /
       ("sncube_bench_refresh_" + std::to_string(::getpid()))).string();
  RefreshOptions refresh_opts;
  refresh_opts.dir = snap_dir;
  RefreshCoordinator coordinator(
      refresh_set,
      std::shared_ptr<const CubeResult>(&cube, [](const CubeResult*) {}),
      schema, refresh_opts);

  // The coordinator paces itself off the routed-query count: refresh e
  // starts once e/(R+1) of the traffic has been answered, so every epoch
  // serves a slice of the run and the last slice lands post-refresh.
  std::atomic<std::int64_t> processed{0};
  std::atomic<std::uint64_t> wrong_refresh{0};
  WallTimer refresh_timer;
  std::thread refresher([&] {
    for (int e = 1; e <= refreshes; ++e) {
      const std::int64_t threshold =
          static_cast<std::int64_t>(e) * queries / (refreshes + 1);
      while (processed.load(std::memory_order_acquire) < threshold) {
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      coordinator.Refresh(refresh_delta(e));
    }
  });
  std::vector<std::thread> refresh_threads;
  refresh_threads.reserve(static_cast<std::size_t>(clients));
  for (int c = 0; c < clients; ++c) {
    refresh_threads.emplace_back([&, c] {
      Rng rng(3000003ULL * static_cast<std::uint64_t>(c + 1));
      const std::int64_t n =
          queries / clients + (c < queries % clients ? 1 : 0);
      for (std::int64_t i = 0; i < n; ++i) {
        const Query& q = mix.Sample(rng);
        const RouterResult r = refresh_router.Execute(q);
        if (r.outcome == RouterOutcome::kOk) {
          const auto& goldens = refresh_golden.at(CanonicalQueryKey(q));
          bool match = false;
          for (const Relation& g : goldens) {
            if (r.answer->rel == g) { match = true; break; }
          }
          if (!match) wrong_refresh.fetch_add(1, std::memory_order_relaxed);
        }
        processed.fetch_add(1, std::memory_order_release);
      }
    });
  }
  for (auto& t : refresh_threads) t.join();
  refresher.join();
  const double refresh_wall_s = refresh_timer.Seconds();
  const RouterStatsSnapshot refresh_rstats = refresh_router.Stats();
  const std::uint64_t epochs_installed = refresh_set.serving_epoch();
  refresh_set.Shutdown();
  std::error_code ec;
  std::filesystem::remove_all(snap_dir, ec);

  std::printf("refresh (%d shards, %d refreshes, %lld-row deltas): "
              "%llu/%llu ok, epochs installed %llu, wrong answers %llu, "
              "ok p99 %.0f us\n",
              shards, refreshes, static_cast<long long>(delta_rows),
              static_cast<unsigned long long>(refresh_rstats.ok),
              static_cast<unsigned long long>(refresh_rstats.requests),
              static_cast<unsigned long long>(epochs_installed),
              static_cast<unsigned long long>(wrong_refresh.load()),
              refresh_rstats.ok_latency.p99_us);

  std::ofstream refresh_os("BENCH_refresh.json");
  std::snprintf(buf, sizeof buf,
                "{\"bench\":\"serve_refresh\",\"shards\":%d,\"clients\":%d,"
                "\"queries\":%lld,\"refreshes\":%d,\"delta_rows\":%lld,"
                "\"wall_s\":%.4f,\"qps\":%.0f,\"epochs_installed\":%llu,"
                "\"wrong_answers\":%llu,",
                shards, clients, static_cast<long long>(queries), refreshes,
                static_cast<long long>(delta_rows), refresh_wall_s,
                static_cast<double>(queries) / refresh_wall_s,
                static_cast<unsigned long long>(epochs_installed),
                static_cast<unsigned long long>(wrong_refresh.load()));
  refresh_os << buf << "\"router\":" << refresh_rstats.ToJson() << "}\n";
  std::printf("wrote BENCH_refresh.json\n");

  if (wrong.load() != 0 || wrong_refresh.load() != 0) {
    std::fprintf(stderr,
                 "FAIL: %llu wrong answers under churn, %llu under refresh\n",
                 static_cast<unsigned long long>(wrong.load()),
                 static_cast<unsigned long long>(wrong_refresh.load()));
    return 1;
  }
  return 0;
}
