// Ablation: the Section 2.2 argument against single-dimension data
// partitioning.
//
// The strawman range-partitions raw data on D0 only; views containing D0
// then need no merge. The paper's objections, measured here:
//  * scalability caps at |D0| — with |D0| = 8 and p = 16, half the ranks
//    idle and the time curve flattens;
//  * skew on D0 piles entire hot values onto single ranks (imbalance →
//    p-1), while Procedure 1's all-dimension partitioning + merge keeps
//    working.
#include "bench_util.h"

#include <mutex>

#include "common/env.h"
#include "core/onedim_baseline.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

namespace {

struct OneDimResult {
  double sim_seconds = 0;
  double imbalance = 0;
};

OneDimResult RunOneDim(const DatasetSpec& spec, int p) {
  const Schema schema = spec.MakeSchema();
  Cluster cluster(p);
  std::vector<OneDimStats> stats(p);
  cluster.Run([&](Comm& comm) {
    const Relation local = GenerateSlice(spec, p, comm.rank());
    OneDimStats st;
    OneDimPartitionCube(comm, local, schema, AggFn::kSum, &st);
    stats[comm.rank()] = st;
  });
  return {cluster.SimTimeSeconds(), stats[0].partition_imbalance};
}

}  // namespace

int main() {
  const std::int64_t n = BenchRows(40000, 1000000);
  // |D0| = 8 on purpose: small enough that the sweep crosses it. The schema
  // orders dimensions by decreasing cardinality, so the leading dimension is
  // the LARGEST — all cardinalities stay at or below 8.
  DatasetSpec base;
  base.rows = n;
  base.cardinalities = {8, 7, 6, 5, 4, 3};
  base.seed = 141;
  const auto selected = AllViews(6);

  std::printf("# Ablation: D0-only partitioning vs Procedure 1, n=%lld, "
              "d=6, |D0|=8\n",
              static_cast<long long>(n));
  std::printf("%-8s %-6s %18s %18s %18s\n", "alpha0", "p", "onedim_seconds",
              "procedure1_secs", "onedim_imbalance");
  for (double alpha0 : {0.0, 3.0}) {
    DatasetSpec spec = base;
    spec.alphas = {alpha0, 0, 0, 0, 0, 0};
    for (int p : {2, 4, 8, 16}) {
      if (p > EnvInt("SNCUBE_MAXPROC", 16)) continue;
      const auto onedim = RunOneDim(spec, p);
      const auto ours = RunParallel(spec, p, selected);
      std::printf("%-8.1f %-6d %18.2f %18.2f %18.2f\n", alpha0, p,
                  onedim.sim_seconds, ours.sim_seconds, onedim.imbalance);
    }
  }
  return 0;
}
