// Figure 9: effect of dimension cardinalities (and a skewed leading
// dimension) on time and speedup.
//
// Paper setup: n = 1,000,000; d = 8; mixes
//   (A) all |Di| = 256            — sparse
//   (B) |Di| = 256,128,...,6,6    — the default mix
//   (C) all |Di| = 16             — dense
//   (D) mix B with alpha0 = 3     — the adversarial case: high-cardinality,
//       highly-skewed leading dimension, so the D0-root sort does little to
//       spread the A-partition work.
// Paper result: sparser data (A) costs somewhat more than B which costs
// more than C, with little effect on speedup; case D loses speedup but
// stays within about half of optimal.
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const auto ps = ProcessorSweep();
  const auto selected = AllViews(8);

  struct Mix {
    const char* name;
    std::vector<std::uint32_t> cards;
    std::vector<double> alphas;
  };
  const std::vector<Mix> mixes{
      {"(A) all 256", std::vector<std::uint32_t>(8, 256), {}},
      {"(B) 256..6", {256, 128, 64, 32, 16, 8, 6, 6}, {}},
      {"(C) all 16", std::vector<std::uint32_t>(8, 16), {}},
      {"(D) B,a0=3", {256, 128, 64, 32, 16, 8, 6, 6},
       {3.0, 0, 0, 0, 0, 0, 0, 0}},
  };

  std::vector<std::string> names;
  std::vector<std::vector<double>> times;
  std::vector<double> t1;
  RunResult adversarial;  // mix D at the most processors
  for (const auto& mix : mixes) {
    DatasetSpec spec;
    spec.rows = n;
    spec.cardinalities = mix.cards;
    spec.alphas = mix.alphas;
    spec.seed = 91;
    names.emplace_back(mix.name);
    t1.push_back(RunSequentialSeconds(spec, selected));
    std::vector<double> series;
    for (int p : ps) {
      RunResult r = RunParallel(spec, p, selected);
      series.push_back(r.sim_seconds);
      adversarial = std::move(r);
    }
    times.push_back(std::move(series));
  }

  char title[256];
  std::snprintf(title, sizeof(title),
                "# Figure 9: cardinality mixes, n=%lld, d=8",
                static_cast<long long>(n));
  PrintTimePanel(title, names, ps, times);
  PrintSpeedupPanel(names, ps, t1, times);
  PrintPhaseBreakdown(std::string(mixes.back().name) +
                          ", p=" + std::to_string(ps.back()),
                      adversarial);
  return 0;
}
