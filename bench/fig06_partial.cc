// Figure 6: partial-cube parallel wall-clock time and speedup vs processors
// for 25% / 50% / 75% / 100% of views selected.
//
// Paper setup: n = 2,000,000; d = 8; cards 256..6; alpha = 0. Paper result:
// ≥50% selections track the full-cube speedup; 25% still reaches more than
// half of optimal; very small selections degrade (little local work beyond
// the root views).
#include "bench_util.h"

#include <algorithm>

#include "common/env.h"
#include "common/rng.h"
#include "lattice/estimate.h"
#include "lattice/lattice.h"
#include "query/greedy_select.h"

using namespace sncube;
using namespace sncube::bench;

namespace {

// The paper does not say how the k% of views were chosen; both plausible
// readings are measured — a uniformly random subset (always containing the
// full view so every partition root stays cheap to seed) and the HRU-greedy
// subset a practitioner would pick.
std::vector<ViewId> RandomSelection(int d, double fraction, Rng& rng) {
  auto views = AllViews(d);
  std::erase(views, ViewId::Full(d));
  // Fisher–Yates prefix shuffle.
  for (std::size_t i = 0; i < views.size(); ++i) {
    std::swap(views[i],
              views[i + static_cast<std::size_t>(rng.Below(views.size() - i))]);
  }
  auto count = static_cast<std::size_t>(fraction * (1u << d));
  count = std::max<std::size_t>(1, count);
  std::vector<ViewId> selected{ViewId::Full(d)};
  for (std::size_t i = 0; i + 1 < count && i < views.size(); ++i) {
    selected.push_back(views[i]);
  }
  return selected;
}

void RunSeries(const char* how, const DatasetSpec& spec,
               const std::vector<int>& ps,
               const std::vector<std::vector<ViewId>>& selections,
               const std::vector<std::string>& names) {
  std::vector<std::vector<double>> times;
  std::vector<double> t1;
  RunResult widest;  // last selection (100%) at the most processors
  for (const auto& selected : selections) {
    t1.push_back(RunSequentialSeconds(spec, selected));
    std::vector<double> series;
    for (int p : ps) {
      RunResult r = RunParallel(spec, p, selected);
      series.push_back(r.sim_seconds);
      widest = std::move(r);
    }
    times.push_back(std::move(series));
  }
  char title[256];
  std::snprintf(title, sizeof(title),
                "# Figure 6 (%s selections): partial cubes, n=%lld, d=8, "
                "cards 256..6, alpha=0",
                how, static_cast<long long>(spec.rows));
  PrintTimePanel(title, names, ps, times);
  PrintSpeedupPanel(names, ps, t1, times);
  PrintPhaseBreakdown(std::string(how) + ", " + names.back() +
                          ", p=" + std::to_string(ps.back()),
                      widest);
}

}  // namespace

int main() {
  const std::int64_t n = BenchRows(100000, 2000000);
  const auto ps = ProcessorSweep();
  DatasetSpec spec = DatasetSpec::PaperDefault(n);
  spec.seed = 61;
  const Schema schema = spec.MakeSchema();
  const AnalyticEstimator est(schema, static_cast<double>(n));

  const double fractions[] = {0.25, 0.50, 0.75, 1.00};
  std::vector<std::string> names;
  for (double f : fractions) {
    names.push_back(std::to_string(static_cast<int>(f * 100)) + "% sel");
  }

  std::vector<std::vector<ViewId>> random_sel;
  Rng rng(66);
  for (double f : fractions) random_sel.push_back(RandomSelection(8, f, rng));
  RunSeries("random", spec, ps, random_sel, names);
  std::printf("\n");

  std::vector<std::vector<ViewId>> greedy_sel;
  for (double f : fractions) {
    greedy_sel.push_back(GreedySelectFraction(8, f, est));
  }
  RunSeries("HRU-greedy", spec, ps, greedy_sel, names);
  return 0;
}
