// Extension from Section 4.1: "our speedup results could be further improved
// by overlapping communication and local computation. Our current
// implementation does not overlap the local computation of Di-Partitions
// with the global communication involved in merging Di-1-Partitions. Doing
// so would mask between 40% and 60% of the communication overhead."
//
// This bench recomputes the simulated parallel time under that overlap (per
// rank, partition i's merge traffic pipelined behind partition i+1's local
// work) and reports the masked fraction of communication time.
#include "bench_util.h"

#include <algorithm>

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const auto selected = AllViews(8);

  std::printf("# Overlap extension (Section 4.1): masking merge comm behind "
              "the next partition's computation, n=%lld, d=8\n",
              static_cast<long long>(n));
  std::printf("%-6s %14s %16s %14s %18s\n", "p", "blocking_s", "overlapped_s",
              "net_total_s", "comm_masked_%");
  for (int p : {4, 8, 16}) {
    if (p > EnvInt("SNCUBE_MAXPROC", 16)) continue;
    DatasetSpec spec = DatasetSpec::PaperDefault(n);
    spec.seed = 151;
    const Schema schema = spec.MakeSchema();
    Cluster cluster(p);
    cluster.Run([&](Comm& comm) {
      const Relation local = GenerateSlice(spec, p, comm.rank());
      BuildParallelCube(comm, local, schema, selected);
    });
    const double blocking = cluster.SimTimeSeconds();
    const double overlapped = OverlappedSimTime(cluster, 8);
    // The worst rank's total network time (≈ every rank's: the BSP clock
    // charges collectives equally).
    double net = 0;
    for (const auto& rs : cluster.stats()) {
      double rank_net = 0;
      for (const auto& [name, ps] : rs.phases) rank_net += ps.net_s;
      net = std::max(net, rank_net);
    }
    const double masked = (blocking - overlapped) / std::max(net, 1e-12);
    std::printf("%-6d %14.2f %16.2f %14.2f %18.1f\n", p, blocking, overlapped,
                net, 100.0 * masked);
  }
  return 0;
}
