// Backend ablation: sort-based vs hash-based view computation across the
// fig08 skew sweep and the fig09 cardinality mixes.
//
// For every data point the same build runs three times — --backend sort,
// hash, and auto — on identical data (the cube bytes are identical by the
// §13 contract; only simulated time moves). The winner column records
// which forced engine was cheaper, showing WHERE each backend wins: sort
// on low-reduction shapes (unskewed, high-cardinality edges, where the
// hash pass is overhead on top of a sort of nearly as many groups), hash
// once skew or dense mixes collapse view cardinalities (fold n rows, sort
// only g ≪ n groups). Auto should track the per-point winner closely by
// mixing engines per edge.
//
// Also emits BENCH_backend.json. The sim costs are pure functions of
// (scale, sweep, seed); the committed bench/baselines/BENCH_backend.json
// copy is structure-gated by tools/bench_compare.py in CI, so a code
// change that flips any winner string fails the gate and must recommit the
// baseline with justification.
#include "bench_util.h"

#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

namespace {

struct Point {
  std::string label;
  double sort_s = 0;
  double hash_s = 0;
  double auto_s = 0;
  const char* winner = "sort";
};

Point RunPoint(const std::string& label, const DatasetSpec& spec, int p,
               const std::vector<ViewId>& selected) {
  Point pt;
  pt.label = label;
  ParallelCubeOptions opts;
  opts.backend = BackendMode::kSort;
  pt.sort_s = RunParallel(spec, p, selected, opts).sim_seconds;
  opts.backend = BackendMode::kHash;
  pt.hash_s = RunParallel(spec, p, selected, opts).sim_seconds;
  opts.backend = BackendMode::kAuto;
  pt.auto_s = RunParallel(spec, p, selected, opts).sim_seconds;
  pt.winner = pt.sort_s <= pt.hash_s ? "sort" : "hash";
  return pt;
}

void PrintSweep(const char* title, const std::vector<Point>& points) {
  std::printf("\n%s\n", title);
  std::printf("%-14s %12s %12s %12s %8s\n", "point", "sort_s", "hash_s",
              "auto_s", "winner");
  for (const auto& pt : points) {
    std::printf("%-14s %12.3f %12.3f %12.3f %8s\n", pt.label.c_str(),
                pt.sort_s, pt.hash_s, pt.auto_s, pt.winner);
  }
}

void EmitPoints(std::ofstream& os, const std::vector<Point>& points) {
  for (std::size_t i = 0; i < points.size(); ++i) {
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "%s{\"label\":\"%s\",\"sort_s\":%.6f,\"hash_s\":%.6f,"
                  "\"auto_s\":%.6f,\"winner\":\"%s\"}",
                  i == 0 ? "" : ",", points[i].label.c_str(), points[i].sort_s,
                  points[i].hash_s, points[i].auto_s, points[i].winner);
    os << buf;
  }
}

}  // namespace

int main() {
  // This bench sweeps backends explicitly; the bench_util env knob must not
  // override the per-run choice.
  unsetenv("SNCUBE_BACKEND");

  const std::int64_t n = BenchRows(20000, 1000000);
  const int p =
      std::min<int>(4, static_cast<int>(EnvInt("SNCUBE_MAXPROC", 16)));
  const auto selected = AllViews(8);

  // fig08 shape: paper default mix (cards 256..6), uniform Zipf alpha per
  // dimension. Low alpha = little reduction per edge → sort's regime.
  std::vector<Point> skew;
  for (double alpha : {0.0, 1.0, 2.0, 3.0}) {
    DatasetSpec spec = DatasetSpec::PaperDefault(n);
    spec.alphas.assign(8, alpha);
    spec.seed = 81;
    char label[32];
    std::snprintf(label, sizeof label, "alpha=%.1f", alpha);
    skew.push_back(RunPoint(label, spec, p, selected));
  }

  // fig09 cardinality mixes. The dense mix (C) collapses every deep edge's
  // cardinality → hash's regime.
  struct Mix {
    const char* name;
    std::vector<std::uint32_t> cards;
    std::vector<double> alphas;
  };
  const std::vector<Mix> mixes{
      {"(A) all 256", std::vector<std::uint32_t>(8, 256), {}},
      {"(B) 256..6", {256, 128, 64, 32, 16, 8, 6, 6}, {}},
      {"(C) all 16", std::vector<std::uint32_t>(8, 16), {}},
      {"(D) B,a0=3", {256, 128, 64, 32, 16, 8, 6, 6},
       {3.0, 0, 0, 0, 0, 0, 0, 0}},
  };
  std::vector<Point> cardinality;
  for (const auto& mix : mixes) {
    DatasetSpec spec;
    spec.rows = n;
    spec.cardinalities = mix.cards;
    spec.alphas = mix.alphas;
    spec.seed = 91;
    cardinality.push_back(RunPoint(mix.name, spec, p, selected));
  }

  std::printf("# Backend ablation: n=%lld, d=8, p=%d (simulated seconds)\n",
              static_cast<long long>(n), p);
  PrintSweep("skew sweep (fig08 shape, cards 256..6)", skew);
  PrintSweep("cardinality mixes (fig09 shape)", cardinality);

  int hash_wins = 0, sort_wins = 0;
  for (const auto& pt : skew) (pt.winner[0] == 'h' ? hash_wins : sort_wins)++;
  for (const auto& pt : cardinality) {
    (pt.winner[0] == 'h' ? hash_wins : sort_wins)++;
  }
  std::printf("\nwinners: sort=%d hash=%d (crossover regimes present: %s)\n",
              sort_wins, hash_wins,
              sort_wins > 0 && hash_wins > 0 ? "yes" : "NO");

  std::ofstream os("BENCH_backend.json");
  char head[128];
  std::snprintf(head, sizeof head,
                "{\"bench\":\"ablation_backend\",\"rows\":%lld,\"p\":%d,",
                static_cast<long long>(n), p);
  os << head << "\"skew\":[";
  EmitPoints(os, skew);
  os << "],\"cardinality\":[";
  EmitPoints(os, cardinality);
  os << "]}\n";
  std::printf("wrote BENCH_backend.json\n");
  return 0;
}
