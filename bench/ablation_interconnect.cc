// The interconnect upgrade the paper anticipates (Section 4): "We will
// shortly be replacing our 100 Megabyte interconnect with a 1 Gigabyte
// Ethernet interconnect and expect that this will further improve the
// relative speedup results."
//
// This bench runs the same workload on the Fast-Ethernet cost preset and
// the Gigabit preset and reports both speedup curves.
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const auto ps = ProcessorSweep();
  DatasetSpec spec = DatasetSpec::PaperDefault(n);
  spec.seed = 161;
  const auto selected = AllViews(8);

  std::vector<std::string> names{"100Mb eth", "1Gb eth"};
  std::vector<std::vector<double>> times(2);
  std::vector<double> t1(2);
  const CostParams presets[2] = {FastEthernetBeowulf(), GigabitBeowulf()};
  for (int s = 0; s < 2; ++s) {
    t1[s] = RunSequentialSeconds(spec, selected, presets[s]);
    for (int p : ps) {
      times[s].push_back(
          RunParallel(spec, p, selected, {}, presets[s]).sim_seconds);
    }
  }

  char title[256];
  std::snprintf(title, sizeof(title),
                "# Interconnect upgrade: 100 Mb vs 1 Gb Ethernet, n=%lld, "
                "d=8, cards 256..6",
                static_cast<long long>(n));
  PrintTimePanel(title, names, ps, times);
  PrintSpeedupPanel(names, ps, t1, times);
  return 0;
}
