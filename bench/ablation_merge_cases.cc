// Ablation: is the Case-2 overlap-routing path worth having, or could
// Merge–Partitions simply re-sort every non-prefix view (Case 3)?
//
// DESIGN.md calls this out: Case 2 exists because routing only the
// overlapping rows is far cheaper than a full parallel re-sort when the
// projected distribution is already balanced. Forcing Case 3 shows the
// price. Uniform data (alpha = 0) favours Case 2 most; light skew narrows
// the gap because more views genuinely need the re-sort.
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const int p = static_cast<int>(EnvInt("SNCUBE_MAXPROC", 16));
  const auto selected = AllViews(8);

  std::printf("# Ablation: Case-2 overlap routing vs forcing Case-3 "
              "re-sorts, n=%lld, d=8, p=%d\n",
              static_cast<long long>(n), p);
  std::printf("%-8s %-12s %14s %16s %8s %8s %8s\n", "alpha", "mode",
              "sim_seconds", "merge_comm_MB", "case1", "case2", "case3");
  for (double alpha : {0.0, 1.0}) {
    for (bool force : {false, true}) {
      DatasetSpec spec = DatasetSpec::PaperDefault(n);
      spec.alphas.assign(8, alpha);
      spec.seed = 131;
      ParallelCubeOptions opts;
      opts.force_case3 = force;
      const auto result = RunParallel(spec, p, selected, opts);
      std::printf("%-8.1f %-12s %14.2f %16.2f %8d %8d %8d\n", alpha,
                  force ? "force-case3" : "adaptive", result.sim_seconds,
                  result.bytes_merge / 1048576.0, result.merge.case1_views,
                  result.merge.case2_views, result.merge.case3_views);
    }
  }
  return 0;
}
