// Figure 10: parallel wall-clock time as a function of dimensionality.
//
// Paper setup: n = 1,000,000; |Di| = 256 in every dimension; k = 100%;
// p = 16; d = 6..10. The view count grows as 2^d, so the output size grows
// exponentially — the paper observes running time essentially LINEAR in the
// OUTPUT size, which is the column to check below.
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const int p = static_cast<int>(EnvInt("SNCUBE_MAXPROC", 16));

  std::printf("# Figure 10: dimensionality sweep, n=%lld, all cards 256, "
              "p=%d\n",
              static_cast<long long>(n), p);
  std::printf("%-4s %8s %16s %14s %16s %20s\n", "d", "views", "sim_seconds",
              "cube_Mrows", "cube_MB", "us_per_output_row");
  RunResult deepest;  // d = 10
  for (int d = 6; d <= 10; ++d) {
    DatasetSpec spec;
    spec.rows = n;
    spec.cardinalities.assign(d, 256);
    spec.seed = 101;
    RunResult result = RunParallel(spec, p, AllViews(d));
    std::printf("%-4d %8u %16.2f %14.2f %16.1f %20.3f\n", d, 1u << d,
                result.sim_seconds, result.cube_rows / 1e6,
                result.cube_bytes / 1048576.0,
                result.sim_seconds * 1e6 /
                    static_cast<double>(result.cube_rows));
    deepest = std::move(result);
  }
  PrintPhaseBreakdown("d=10, p=" + std::to_string(p), deepest);
  return 0;
}
