// Micro-benchmarks for the view-size estimators: throughput of building
// FM sketches vs the (free) analytic formula, Hungarian-matched tree
// construction under each, and the accuracy trade-off that drives the
// global-schedule-tree quality (Section 2.3: "Pipesort and most other
// methods make statistical estimates of the view sizes").
#include <benchmark/benchmark.h>

#include "data/generator.h"
#include "lattice/estimate.h"
#include "lattice/lattice.h"
#include "relation/aggregate.h"
#include "relation/sort.h"
#include "schedule/pipesort.h"

namespace sncube {
namespace {

void BM_AnalyticEstimateAllViews(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  const Schema schema(std::vector<std::uint32_t>(d, 64));
  const AnalyticEstimator est(schema, 1e6);
  const auto views = AllViews(d);
  for (auto _ : state) {
    double total = 0;
    for (ViewId v : views) total += est.EstimateRows(v);
    benchmark::DoNotOptimize(total);
  }
}
BENCHMARK(BM_AnalyticEstimateAllViews)->Arg(8)->Arg(10);

void BM_FmSketchAllViews(benchmark::State& state) {
  const int d = 6;
  DatasetSpec spec;
  spec.rows = state.range(0);
  spec.cardinalities.assign(d, 32);
  spec.seed = 3;
  const Relation data = GenerateDataset(spec);
  std::vector<int> rel_dims;
  for (int i = 0; i < d; ++i) rel_dims.push_back(i);
  const auto views = AllViews(d);
  for (auto _ : state) {
    FmViewEstimator est(data, rel_dims, views, 64);
    benchmark::DoNotOptimize(est.EstimateRows(ViewId::Full(d)));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0) *
                          static_cast<std::int64_t>(views.size()));
}
BENCHMARK(BM_FmSketchAllViews)->Arg(5000)->Arg(20000);

// Accuracy sweep reported through counters: mean relative error of both
// estimators against exact distinct counts on skewed data.
void BM_EstimatorAccuracy(benchmark::State& state) {
  const int d = 5;
  DatasetSpec spec;
  spec.rows = 30000;
  spec.cardinalities = {64, 32, 16, 8, 4};
  spec.alphas.assign(5, static_cast<double>(state.range(0)) / 10.0);
  spec.seed = 4;
  const Relation data = GenerateDataset(spec);
  const Schema schema = spec.MakeSchema();
  std::vector<int> rel_dims{0, 1, 2, 3, 4};
  const auto views = AllViews(d);

  double analytic_err = 0;
  double fm_err = 0;
  for (auto _ : state) {
    const AnalyticEstimator analytic(schema, static_cast<double>(spec.rows));
    const FmViewEstimator fm(data, rel_dims, views, 128);
    analytic_err = fm_err = 0;
    for (ViewId v : views) {
      if (v.empty()) continue;
      const auto dims = v.DimList();
      const std::vector<int> cols(dims.begin(), dims.end());
      const auto actual = static_cast<double>(
          SortAndAggregate(data, cols, AggFn::kSum).size());
      analytic_err += std::abs(analytic.EstimateRows(v) - actual) / actual;
      fm_err += std::abs(fm.EstimateRows(v) - actual) / actual;
    }
    benchmark::DoNotOptimize(analytic_err + fm_err);
  }
  state.counters["analytic_mean_rel_err"] =
      analytic_err / static_cast<double>(views.size() - 1);
  state.counters["fm_mean_rel_err"] =
      fm_err / static_cast<double>(views.size() - 1);
}
BENCHMARK(BM_EstimatorAccuracy)->Arg(0)->Arg(10)->Arg(20);

}  // namespace
}  // namespace sncube

BENCHMARK_MAIN();
