// Shared harness for the figure-reproduction benches.
//
// Every figure bench runs the real algorithms on the simulated cluster and
// reports SIMULATED parallel wall-clock seconds (the BSP clock built from
// measured operation counts — see DESIGN.md §2). Relative speedup uses the
// classic sequential Pipesort on one simulated node as T(1), exactly the
// paper's baseline [3].
//
// Scale: every bench defaults to a container-friendly row count and scales
// with SNCUBE_SCALE; SNCUBE_PAPER=1 switches to the paper's n. The shapes
// (who wins, where curves bend) are scale-robust; EXPERIMENTS.md records
// both scales.
#pragma once

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "core/parallel_cube.h"
#include "data/generator.h"
#include "net/cluster.h"

namespace sncube::bench {

// One phase family's cost, totaled across ranks and partitions: the rows of
// the per-figure phase breakdown (DESIGN.md §10). "partition/3" and
// "partition/5" collapse into family "partition"; phases with no numeric
// suffix keep their name.
struct PhaseRow {
  std::string family;
  double cpu_s = 0;
  double disk_s = 0;
  double net_s = 0;
  // Parallel-region accounting (exec::TaskPool regions): total work issued
  // vs critical-path span actually charged to the clock. cpu_s already
  // includes par_span_s; work − span is the CPU the pool absorbed.
  double par_work_s = 0;
  double par_span_s = 0;
  std::uint64_t bytes = 0;

  double total_s() const { return cpu_s + disk_s + net_s; }
};

struct RunResult {
  double sim_seconds = 0;
  std::uint64_t bytes_total = 0;
  std::uint64_t bytes_merge = 0;
  std::uint64_t cube_rows = 0;
  std::uint64_t cube_bytes = 0;
  MergeStats merge;
  std::vector<PhaseRow> phases;  // pipeline order, then leftovers sorted
};

// Full/partial parallel cube on p simulated processors. When the
// SNCUBE_TRACE_OUT environment variable is set, each run additionally
// writes a Chrome trace_event timeline to "<SNCUBE_TRACE_OUT>-pP-NNN.json"
// (P = processor count, NNN = a process-wide run counter).
RunResult RunParallel(const DatasetSpec& spec, int p,
                      const std::vector<ViewId>& selected,
                      const ParallelCubeOptions& opts = {},
                      CostParams cost = FastEthernetBeowulf());

// Collapses a finished run's per-rank, per-partition phase stats into
// family totals (see PhaseRow). RunParallel fills RunResult::phases with
// this already; exposed for benches that drive Cluster directly.
std::vector<PhaseRow> CollapsePhases(const Cluster& cluster);

// Prints one run's phase breakdown as a table: per-family cpu/disk/net
// simulated seconds, bytes on the wire, and the family's share of total
// charged time. `label` names the configuration (e.g. "p=16, n=2000000").
void PrintPhaseBreakdown(const std::string& label, const RunResult& result);

// Sequential baseline: classic whole-lattice Pipesort (full cube) or
// per-partition partial cube, on one simulated node.
double RunSequentialSeconds(const DatasetSpec& spec,
                            const std::vector<ViewId>& selected,
                            CostParams cost = FastEthernetBeowulf());

// Standard processor sweep for the speedup figures.
std::vector<int> ProcessorSweep();

// What the simulated time WOULD be if the merge communication of partition
// i were overlapped with the local computation of partition i+1 — the
// improvement Section 4.1 of the paper sketches ("would mask between 40%
// and 60% of the communication overhead"). Recomputed per rank from the
// per-partition phase stats of a finished run; returns the overlapped
// parallel time. `d` is the number of dimensions (partitions).
double OverlappedSimTime(const Cluster& cluster, int d);

// Prints the two-panel figure layout the paper uses: absolute times and the
// relative speedup per column.
void PrintTimePanel(const std::string& title,
                    const std::vector<std::string>& series_names,
                    const std::vector<int>& ps,
                    const std::vector<std::vector<double>>& times);
void PrintSpeedupPanel(const std::vector<std::string>& series_names,
                       const std::vector<int>& ps,
                       const std::vector<double>& t1,
                       const std::vector<std::vector<double>>& times);

}  // namespace sncube::bench
