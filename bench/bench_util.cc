#include "bench_util.h"

#include "common/env.h"
#include "seqcube/seq_cube.h"

namespace sncube::bench {

RunResult RunParallel(const DatasetSpec& spec, int p,
                      const std::vector<ViewId>& selected,
                      const ParallelCubeOptions& opts, CostParams cost) {
  const Schema schema = spec.MakeSchema();
  Cluster cluster(p, cost);
  RunResult result;
  std::vector<std::uint64_t> rows(p, 0);
  std::vector<std::uint64_t> bytes(p, 0);
  std::vector<MergeStats> merges(p);
  cluster.Run([&](Comm& comm) {
    const Relation local = GenerateSlice(spec, p, comm.rank());
    ParallelCubeStats stats;
    const CubeResult cube =
        BuildParallelCube(comm, local, schema, selected, opts, &stats);
    rows[comm.rank()] = cube.TotalRows();
    bytes[comm.rank()] = cube.TotalBytes();
    merges[comm.rank()] = stats.merge;
  });
  result.sim_seconds = cluster.SimTimeSeconds();
  result.bytes_total = cluster.BytesSent();
  result.bytes_merge = cluster.BytesSent("merge");
  for (int r = 0; r < p; ++r) {
    result.cube_rows += rows[r];
    result.cube_bytes += bytes[r];
  }
  result.merge = merges[0];
  return result;
}

double RunSequentialSeconds(const DatasetSpec& spec,
                            const std::vector<ViewId>& selected,
                            CostParams cost) {
  const Schema schema = spec.MakeSchema();
  const bool full = selected.size() == (1u << schema.dims());
  Cluster cluster(1, cost);
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, 1, 0);
    ExecStats stats;
    if (full) {
      SequentialPipesortCube(raw, schema, AggFn::kSum, &comm.disk(), &stats);
    } else {
      SequentialCube(raw, schema, selected, AggFn::kSum, &comm.disk(),
                     &stats);
    }
    comm.ChargeScanRecords(stats.records_scanned + stats.rows_emitted);
    comm.ChargeCpu(stats.sort_cost_units * comm.cost().cpu_sort_record_s);
  });
  return cluster.SimTimeSeconds();
}

double OverlappedSimTime(const Cluster& cluster, int d) {
  double worst = 0;
  for (const auto& rs : cluster.stats()) {
    // Per partition: local work (cpu + disk across all its phases) and the
    // merge-phase network time.
    std::vector<double> work(static_cast<std::size_t>(d), 0.0);
    std::vector<double> merge_net(static_cast<std::size_t>(d), 0.0);
    double other_net = 0;
    for (const auto& [name, ps] : rs.phases) {
      const auto slash = name.rfind('/');
      int part = -1;
      if (slash != std::string::npos) {
        part = std::atoi(name.c_str() + slash + 1);
      }
      if (part < 0 || part >= d) {
        other_net += ps.net_s + ps.cpu_s + ps.disk_s;
        continue;
      }
      work[part] += ps.cpu_s + ps.disk_s;
      if (name.rfind("merge", 0) == 0) {
        merge_net[part] += ps.net_s;
      } else {
        other_net += ps.net_s;
      }
    }
    // Partition i's merge traffic hides behind partition i+1's local work;
    // the last partition's merge cannot be hidden:
    //   T = work_0 + Σ_i max(merge_net_i, work_{i+1}) + merge_net_{d-1}.
    double t = other_net + work[0];
    for (int i = 0; i + 1 < d; ++i) {
      t += std::max(merge_net[static_cast<std::size_t>(i)],
                    work[static_cast<std::size_t>(i) + 1]);
    }
    t += merge_net[static_cast<std::size_t>(d) - 1];
    worst = std::max(worst, t);
  }
  return worst;
}

std::vector<int> ProcessorSweep() {
  const int max_p = static_cast<int>(EnvInt("SNCUBE_MAXPROC", 16));
  std::vector<int> ps;
  for (int p : {1, 2, 4, 8, 12, 16}) {
    if (p <= max_p) ps.push_back(p);
  }
  return ps;
}

void PrintTimePanel(const std::string& title,
                    const std::vector<std::string>& series_names,
                    const std::vector<int>& ps,
                    const std::vector<std::vector<double>>& times) {
  std::printf("%s\n", title.c_str());
  std::printf("%-6s", "p");
  for (const auto& name : series_names) std::printf("  %14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("%-6d", ps[i]);
    for (const auto& series : times) std::printf("  %14.2f", series[i]);
    std::printf("\n");
  }
}

void PrintSpeedupPanel(const std::vector<std::string>& series_names,
                       const std::vector<int>& ps,
                       const std::vector<double>& t1,
                       const std::vector<std::vector<double>>& times) {
  std::printf("\nrelative speedup (T_seq / T_p; linear = p)\n");
  std::printf("%-6s", "p");
  for (const auto& name : series_names) std::printf("  %14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("%-6d", ps[i]);
    for (std::size_t s = 0; s < times.size(); ++s) {
      std::printf("  %14.2f", t1[s] / times[s][i]);
    }
    std::printf("\n");
  }
}

}  // namespace sncube::bench
