#include "bench_util.h"

#include <algorithm>
#include <cstdlib>
#include <map>

#include "common/env.h"
#include "obs/export.h"
#include "obs/trace.h"
#include "seqcube/seq_cube.h"

namespace sncube::bench {

namespace {

// Canonical pipeline order for breakdown tables; families not listed here
// (none today) sort alphabetically after these.
int FamilyOrder(const std::string& family) {
  static constexpr const char* kOrder[] = {"default",  "restore", "partition",
                                           "schedule", "compute", "merge",
                                           "checkpoint"};
  for (int i = 0; i < static_cast<int>(std::size(kOrder)); ++i) {
    if (family == kOrder[i]) return i;
  }
  return static_cast<int>(std::size(kOrder));
}

}  // namespace

RunResult RunParallel(const DatasetSpec& spec, int p,
                      const std::vector<ViewId>& selected,
                      const ParallelCubeOptions& opts, CostParams cost) {
  const Schema schema = spec.MakeSchema();
  Cluster cluster(p, cost);
  cluster.set_threads_per_rank(
      static_cast<int>(EnvInt("SNCUBE_THREADS_PER_RANK", 1)));
  // SNCUBE_BACKEND reruns any fig bench on the other engine without a
  // recompile (EXPERIMENTS.md env-knob table). Unset/invalid → caller's
  // choice stands; benches that sweep backends themselves clear the knob.
  ParallelCubeOptions run_opts = opts;
  if (const auto mode = ParseBackendMode(EnvStr("SNCUBE_BACKEND", ""))) {
    run_opts.backend = *mode;
  }
  obs::TraceSink trace_sink;
  const char* trace_prefix = std::getenv("SNCUBE_TRACE_OUT");
  if (trace_prefix != nullptr) cluster.set_trace_sink(&trace_sink);
  RunResult result;
  std::vector<std::uint64_t> rows(p, 0);
  std::vector<std::uint64_t> bytes(p, 0);
  std::vector<MergeStats> merges(p);
  cluster.Run([&](Comm& comm) {
    const Relation local = GenerateSlice(spec, p, comm.rank());
    ParallelCubeStats stats;
    const CubeResult cube =
        BuildParallelCube(comm, local, schema, selected, run_opts, &stats);
    rows[comm.rank()] = cube.TotalRows();
    bytes[comm.rank()] = cube.TotalBytes();
    merges[comm.rank()] = stats.merge;
  });
  result.sim_seconds = cluster.SimTimeSeconds();
  result.bytes_total = cluster.BytesSent();
  result.bytes_merge = cluster.BytesSent("merge");
  for (int r = 0; r < p; ++r) {
    result.cube_rows += rows[r];
    result.cube_bytes += bytes[r];
  }
  result.merge = merges[0];
  result.phases = CollapsePhases(cluster);
  if (trace_prefix != nullptr) {
    static int run_counter = 0;  // benches are single-threaded drivers
    char path[512];
    std::snprintf(path, sizeof(path), "%s-p%d-%03d.json", trace_prefix, p,
                  run_counter++);
    obs::WriteTextFile(path, obs::ChromeTraceJson(trace_sink.Snapshot()));
  }
  return result;
}

std::vector<PhaseRow> CollapsePhases(const Cluster& cluster) {
  std::map<std::string, PhaseRow> families;
  for (const auto& rs : cluster.stats()) {
    for (const auto& [name, ps] : rs.phases) {
      std::string family = name;
      const auto slash = name.rfind('/');
      if (slash != std::string::npos &&
          name.find_first_not_of("0123456789", slash + 1) ==
              std::string::npos) {
        family = name.substr(0, slash);
      }
      PhaseRow& row = families[family];
      row.family = family;
      row.cpu_s += ps.cpu_s;
      row.disk_s += ps.disk_s;
      row.net_s += ps.net_s;
      row.par_work_s += ps.par_work_s;
      row.par_span_s += ps.par_span_s;
      row.bytes += ps.bytes_sent;
    }
  }
  std::vector<PhaseRow> result;
  result.reserve(families.size());
  for (auto& [name, row] : families) result.push_back(std::move(row));
  // std::map already sorted alphabetically; stable_sort keeps that order
  // within equal FamilyOrder ranks.
  std::stable_sort(result.begin(), result.end(),
                   [](const PhaseRow& a, const PhaseRow& b) {
                     return FamilyOrder(a.family) < FamilyOrder(b.family);
                   });
  return result;
}

void PrintPhaseBreakdown(const std::string& label, const RunResult& result) {
  double total = 0;
  bool any_parallel = false;
  for (const auto& row : result.phases) {
    total += row.total_s();
    any_parallel = any_parallel || row.par_work_s > 0;
  }
  std::printf("\nphase breakdown [%s] "
              "(totals across ranks, simulated seconds)\n",
              label.c_str());
  // work/span columns only appear once some phase actually ran a parallel
  // region (threads-per-rank > 1); serial runs keep the classic table.
  if (any_parallel) {
    std::printf("%-12s %10s %10s %10s %10s %10s %10s %7s\n", "phase", "cpu_s",
                "disk_s", "net_s", "work_s", "span_s", "MB", "share");
  } else {
    std::printf("%-12s %10s %10s %10s %10s %7s\n", "phase", "cpu_s", "disk_s",
                "net_s", "MB", "share");
  }
  for (const auto& row : result.phases) {
    const double share =
        total == 0 ? 0.0 : 100.0 * row.total_s() / total;
    if (any_parallel) {
      std::printf("%-12s %10.3f %10.3f %10.3f %10.3f %10.3f %10.2f %6.1f%%\n",
                  row.family.c_str(), row.cpu_s, row.disk_s, row.net_s,
                  row.par_work_s, row.par_span_s,
                  static_cast<double>(row.bytes) / 1048576.0, share);
    } else {
      std::printf("%-12s %10.3f %10.3f %10.3f %10.2f %6.1f%%\n",
                  row.family.c_str(), row.cpu_s, row.disk_s, row.net_s,
                  static_cast<double>(row.bytes) / 1048576.0, share);
    }
  }
}

double RunSequentialSeconds(const DatasetSpec& spec,
                            const std::vector<ViewId>& selected,
                            CostParams cost) {
  const Schema schema = spec.MakeSchema();
  const bool full = selected.size() == (1u << schema.dims());
  Cluster cluster(1, cost);
  cluster.Run([&](Comm& comm) {
    const Relation raw = GenerateSlice(spec, 1, 0);
    ExecStats stats;
    if (full) {
      SequentialPipesortCube(raw, schema, AggFn::kSum, &comm.disk(), &stats);
    } else {
      SequentialCube(raw, schema, selected, AggFn::kSum, &comm.disk(),
                     &stats);
    }
    comm.ChargeScanRecords(stats.records_scanned + stats.rows_emitted);
    comm.ChargeCpu(stats.sort_cost_units * comm.cost().cpu_sort_record_s +
                   stats.hash_cost_units * comm.cost().cpu_hash_record_s);
  });
  return cluster.SimTimeSeconds();
}

double OverlappedSimTime(const Cluster& cluster, int d) {
  double worst = 0;
  for (const auto& rs : cluster.stats()) {
    // Per partition: local work (cpu + disk across all its phases) and the
    // merge-phase network time.
    std::vector<double> work(static_cast<std::size_t>(d), 0.0);
    std::vector<double> merge_net(static_cast<std::size_t>(d), 0.0);
    double other_net = 0;
    for (const auto& [name, ps] : rs.phases) {
      const auto slash = name.rfind('/');
      int part = -1;
      if (slash != std::string::npos) {
        part = std::atoi(name.c_str() + slash + 1);
      }
      if (part < 0 || part >= d) {
        other_net += ps.net_s + ps.cpu_s + ps.disk_s;
        continue;
      }
      work[part] += ps.cpu_s + ps.disk_s;
      if (name.rfind("merge", 0) == 0) {
        merge_net[part] += ps.net_s;
      } else {
        other_net += ps.net_s;
      }
    }
    // Partition i's merge traffic hides behind partition i+1's local work;
    // the last partition's merge cannot be hidden:
    //   T = work_0 + Σ_i max(merge_net_i, work_{i+1}) + merge_net_{d-1}.
    double t = other_net + work[0];
    for (int i = 0; i + 1 < d; ++i) {
      t += std::max(merge_net[static_cast<std::size_t>(i)],
                    work[static_cast<std::size_t>(i) + 1]);
    }
    t += merge_net[static_cast<std::size_t>(d) - 1];
    worst = std::max(worst, t);
  }
  return worst;
}

std::vector<int> ProcessorSweep() {
  const int max_p = static_cast<int>(EnvInt("SNCUBE_MAXPROC", 16));
  std::vector<int> ps;
  for (int p : {1, 2, 4, 8, 12, 16}) {
    if (p <= max_p) ps.push_back(p);
  }
  return ps;
}

void PrintTimePanel(const std::string& title,
                    const std::vector<std::string>& series_names,
                    const std::vector<int>& ps,
                    const std::vector<std::vector<double>>& times) {
  std::printf("%s\n", title.c_str());
  std::printf("%-6s", "p");
  for (const auto& name : series_names) std::printf("  %14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("%-6d", ps[i]);
    for (const auto& series : times) std::printf("  %14.2f", series[i]);
    std::printf("\n");
  }
}

void PrintSpeedupPanel(const std::vector<std::string>& series_names,
                       const std::vector<int>& ps,
                       const std::vector<double>& t1,
                       const std::vector<std::vector<double>>& times) {
  std::printf("\nrelative speedup (T_seq / T_p; linear = p)\n");
  std::printf("%-6s", "p");
  for (const auto& name : series_names) std::printf("  %14s", name.c_str());
  std::printf("\n");
  for (std::size_t i = 0; i < ps.size(); ++i) {
    std::printf("%-6d", ps[i]);
    for (std::size_t s = 0; s < times.size(); ++s) {
      std::printf("  %14.2f", t1[s] / times[s][i]);
    }
    std::printf("\n");
  }
}

}  // namespace sncube::bench
