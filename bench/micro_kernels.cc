// Micro-benchmarks (google-benchmark) for the sequential kernels: relation
// sort, pipelined multi-view aggregation vs naive per-view sorting, external
// sort spill, Hungarian matching, and schedule-tree construction.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "data/generator.h"
#include "io/external_sort.h"
#include "lattice/lattice.h"
#include "relation/aggregate.h"
#include "relation/sort.h"
#include "schedule/matching.h"
#include "schedule/pipesort.h"
#include "seqcube/pipeline.h"
#include "seqcube/seq_cube.h"

namespace sncube {
namespace {

Relation MakeData(std::int64_t rows, int d, std::uint32_t card,
                  std::uint64_t seed) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.cardinalities.assign(d, card);
  spec.seed = seed;
  return GenerateDataset(spec);
}

void BM_RelationSort(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 64, 1);
  const auto cols = IdentityOrder(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortRelation(rel, cols));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationSort)->Arg(10000)->Arg(100000);

void BM_SortAndAggregate(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 16, 2);
  const std::vector<int> cols{0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortAndAggregate(rel, cols, AggFn::kSum));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortAndAggregate)->Arg(10000)->Arg(100000);

void BM_ExternalSortInMemory(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 64, 3);
  const auto cols = IdentityOrder(4);
  for (auto _ : state) {
    DiskModel disk;  // 64 MiB memory: in-memory path
    benchmark::DoNotOptimize(ExternalSort(rel, cols, disk));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExternalSortInMemory)->Arg(50000);

void BM_ExternalSortSpill(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 64, 4);
  const auto cols = IdentityOrder(4);
  for (auto _ : state) {
    // Tiny memory budget forces run formation + multiway merge.
    DiskModel disk({.block_bytes = 16 * 1024, .memory_bytes = 128 * 1024});
    benchmark::DoNotOptimize(ExternalSort(rel, cols, disk));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExternalSortSpill)->Arg(50000);

void BM_HungarianMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (auto& c : row) c = static_cast<double>(rng.Below(1000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianMinCost(cost));
  }
}
BENCHMARK(BM_HungarianMatching)->Arg(16)->Arg(70)->Arg(126);

void BM_PipesortTreeConstruction(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<std::uint32_t> cards;
  for (int i = 0; i < d; ++i) cards.push_back(256u >> (i / 2));
  const Schema schema(cards);
  const AnalyticEstimator est(schema, 1e6);
  const auto views = AllViews(d);
  const ViewId root = ViewId::Full(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildPipesortTree(views, root, root.DimList(), est));
  }
}
BENCHMARK(BM_PipesortTreeConstruction)->Arg(6)->Arg(8)->Arg(10);

// The point of pipelining: one sort feeds a whole scan chain. Compare the
// full pipelined cube against aggregating every view independently.
void BM_PipelinedFullCube(benchmark::State& state) {
  const Relation raw = MakeData(state.range(0), 6, 32, 6);
  const Schema schema(std::vector<std::uint32_t>(6, 32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SequentialPipesortCube(raw, schema));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelinedFullCube)->Arg(20000);

void BM_PerViewSortFullCube(benchmark::State& state) {
  const Relation raw = MakeData(state.range(0), 6, 32, 6);
  for (auto _ : state) {
    std::uint64_t rows = 0;
    for (ViewId v : AllViews(6)) {
      const auto dims = v.DimList();
      const std::vector<int> cols(dims.begin(), dims.end());
      rows += SortAndAggregate(raw, cols, AggFn::kSum).size();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PerViewSortFullCube)->Arg(20000);

}  // namespace
}  // namespace sncube

BENCHMARK_MAIN();
