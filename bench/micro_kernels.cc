// Micro-benchmarks (google-benchmark) for the sequential kernels: relation
// sort, pipelined multi-view aggregation vs naive per-view sorting, external
// sort spill, Hungarian matching, and schedule-tree construction — plus a
// wall-clock sweep of the exec runtime's ParallelSort against the serial
// sort (1/2/4/8 threads, three record widths), written to BENCH_exec.json.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <thread>

#include "common/env.h"
#include "common/rng.h"
#include "common/timer.h"
#include "data/generator.h"
#include "exec/parallel_algo.h"
#include "exec/task_pool.h"
#include "io/external_sort.h"
#include "lattice/lattice.h"
#include "relation/aggregate.h"
#include "relation/serialize.h"
#include "relation/sort.h"
#include "schedule/matching.h"
#include "schedule/pipesort.h"
#include "seqcube/pipeline.h"
#include "seqcube/seq_cube.h"

namespace sncube {
namespace {

Relation MakeData(std::int64_t rows, int d, std::uint32_t card,
                  std::uint64_t seed) {
  DatasetSpec spec;
  spec.rows = rows;
  spec.cardinalities.assign(d, card);
  spec.seed = seed;
  return GenerateDataset(spec);
}

void BM_RelationSort(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 64, 1);
  const auto cols = IdentityOrder(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortRelation(rel, cols));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_RelationSort)->Arg(10000)->Arg(100000);

void BM_SortAndAggregate(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 16, 2);
  const std::vector<int> cols{0, 1};
  for (auto _ : state) {
    benchmark::DoNotOptimize(SortAndAggregate(rel, cols, AggFn::kSum));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SortAndAggregate)->Arg(10000)->Arg(100000);

void BM_ExternalSortInMemory(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 64, 3);
  const auto cols = IdentityOrder(4);
  for (auto _ : state) {
    DiskModel disk;  // 64 MiB memory: in-memory path
    benchmark::DoNotOptimize(ExternalSort(rel, cols, disk));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExternalSortInMemory)->Arg(50000);

void BM_ExternalSortSpill(benchmark::State& state) {
  const Relation rel = MakeData(state.range(0), 4, 64, 4);
  const auto cols = IdentityOrder(4);
  for (auto _ : state) {
    // Tiny memory budget forces run formation + multiway merge.
    DiskModel disk({.block_bytes = 16 * 1024, .memory_bytes = 128 * 1024});
    benchmark::DoNotOptimize(ExternalSort(rel, cols, disk));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ExternalSortSpill)->Arg(50000);

void BM_HungarianMatching(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(5);
  std::vector<std::vector<double>> cost(n, std::vector<double>(n));
  for (auto& row : cost) {
    for (auto& c : row) c = static_cast<double>(rng.Below(1000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(HungarianMinCost(cost));
  }
}
BENCHMARK(BM_HungarianMatching)->Arg(16)->Arg(70)->Arg(126);

void BM_PipesortTreeConstruction(benchmark::State& state) {
  const int d = static_cast<int>(state.range(0));
  std::vector<std::uint32_t> cards;
  for (int i = 0; i < d; ++i) cards.push_back(256u >> (i / 2));
  const Schema schema(cards);
  const AnalyticEstimator est(schema, 1e6);
  const auto views = AllViews(d);
  const ViewId root = ViewId::Full(d);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        BuildPipesortTree(views, root, root.DimList(), est));
  }
}
BENCHMARK(BM_PipesortTreeConstruction)->Arg(6)->Arg(8)->Arg(10);

// The point of pipelining: one sort feeds a whole scan chain. Compare the
// full pipelined cube against aggregating every view independently.
void BM_PipelinedFullCube(benchmark::State& state) {
  const Relation raw = MakeData(state.range(0), 6, 32, 6);
  const Schema schema(std::vector<std::uint32_t>(6, 32));
  for (auto _ : state) {
    benchmark::DoNotOptimize(SequentialPipesortCube(raw, schema));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PipelinedFullCube)->Arg(20000);

void BM_PerViewSortFullCube(benchmark::State& state) {
  const Relation raw = MakeData(state.range(0), 6, 32, 6);
  for (auto _ : state) {
    std::uint64_t rows = 0;
    for (ViewId v : AllViews(6)) {
      const auto dims = v.DimList();
      const std::vector<int> cols(dims.begin(), dims.end());
      rows += SortAndAggregate(raw, cols, AggFn::kSum).size();
    }
    benchmark::DoNotOptimize(rows);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PerViewSortFullCube)->Arg(20000);

// ---------------------------------------------------------------------------
// exec runtime: serial sort vs ParallelSort, wall clock.
//
// Distinct from the sim-clock accounting the figure benches report: this is
// the real-machine speedup of the work-stealing runtime (acceptance: >= 2x
// at 4 threads on the local-sort kernel — meaningful only on a host with
// >= 4 cores; the JSON records the core count so readers can tell).

double MedianSortSeconds(const Relation& rel, std::span<const int> cols,
                         exec::TaskPool* pool) {
  // Median of 3 runs keeps one scheduler hiccup from polluting the record.
  double best[3];
  for (double& t : best) {
    WallTimer timer;
    Relation out = pool == nullptr ? SortRelation(rel, cols)
                                   : exec::ParallelSortRelation(rel, cols, pool);
    t = timer.Seconds();
    benchmark::DoNotOptimize(out);
  }
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  if (best[1] > best[2]) std::swap(best[1], best[2]);
  if (best[0] > best[1]) std::swap(best[0], best[1]);
  return best[1];
}

void RunExecSortSweep() {
  const std::int64_t rows = BenchRows(300000, 2000000);
  std::ofstream os("BENCH_exec.json");
  os << "{\"bench\":\"exec_sort_sweep\",\"rows\":" << rows
     << ",\"hardware_threads\":" << std::thread::hardware_concurrency()
     << ",\"sweeps\":[";
  bool first = true;
  std::printf("\nexec sort sweep (wall clock, %lld rows)\n",
              static_cast<long long>(rows));
  std::printf("%-8s %-8s %12s %12s %8s\n", "width", "threads", "serial_s",
              "parallel_s", "speedup");
  for (const int width : {2, 4, 8}) {
    DatasetSpec spec;
    spec.rows = rows;
    spec.cardinalities.assign(static_cast<std::size_t>(width), 64);
    spec.seed = static_cast<std::uint64_t>(width);
    const Relation rel = GenerateDataset(spec);
    const auto cols = IdentityOrder(width);
    const double serial_s = MedianSortSeconds(rel, cols, nullptr);
    const ByteBuffer expected = SerializeRelation(SortRelation(rel, cols));
    for (const int threads : {1, 2, 4, 8}) {
      exec::TaskPool pool(threads);
      const double par_s = MedianSortSeconds(rel, cols, &pool);
      // The sweep doubles as an end-to-end determinism check at scale.
      if (SerializeRelation(exec::ParallelSortRelation(rel, cols, &pool)) !=
          expected) {
        std::fprintf(stderr, "FATAL: ParallelSort diverged from serial "
                             "(width=%d threads=%d)\n", width, threads);
        std::exit(1);
      }
      const double speedup = par_s > 0 ? serial_s / par_s : 0.0;
      std::printf("%-8d %-8d %12.4f %12.4f %7.2fx\n", width, threads,
                  serial_s, par_s, speedup);
      char buf[256];
      std::snprintf(buf, sizeof buf,
                    "%s{\"width\":%d,\"threads\":%d,\"serial_wall_s\":%.6f,"
                    "\"parallel_wall_s\":%.6f,\"wall_speedup\":%.3f}",
                    first ? "" : ",", width, threads, serial_s, par_s,
                    speedup);
      os << buf;
      first = false;
    }
  }
  os << "]}\n";
  std::printf("wrote BENCH_exec.json\n");
}

}  // namespace
}  // namespace sncube

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  sncube::RunExecSortSweep();
  return 0;
}
