// Headline numbers (Section 4.1): the paper builds, on 16 processors,
//  * a ≈227M-row (5.6 GB) cube from 2M input rows in under 6 minutes, and
//  * a ≈846M-row (21.7 GB) cube from 10M input rows in under 47 minutes.
//
// This bench reproduces the cube-size accounting and the simulated build
// time at the current scale factor, and prints the paper's numbers beside
// the measured ones. Run with SNCUBE_PAPER=1 for the full-size inputs.
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const int p = static_cast<int>(EnvInt("SNCUBE_MAXPROC", 16));
  struct Row {
    std::int64_t n;
    double paper_minutes;
    double paper_cube_mrows;
    double paper_cube_gb;
  };
  const Row rows[] = {
      {BenchRows(100000, 2000000), 6.0, 227.0, 5.6},
      {BenchRows(500000, 10000000), 47.0, 846.0, 21.7},
  };

  std::printf("# Headline scale check, d=8, cards 256..6, alpha=0, p=%d\n", p);
  std::printf("%-10s %12s %12s %14s %14s %16s %16s\n", "n", "cube_Mrows",
              "cube_GB", "sim_minutes", "paper_minutes", "paper_Mrows",
              "rows_ratio");
  RunResult largest;
  for (const auto& row : rows) {
    DatasetSpec spec = DatasetSpec::PaperDefault(row.n);
    spec.seed = 121;
    RunResult result = RunParallel(spec, p, AllViews(8));
    std::printf("%-10lld %12.2f %12.3f %14.2f %14.1f %16.1f %16.1f\n",
                static_cast<long long>(row.n), result.cube_rows / 1e6,
                result.cube_bytes / 1073741824.0, result.sim_seconds / 60.0,
                row.paper_minutes, row.paper_cube_mrows,
                static_cast<double>(result.cube_rows) /
                    static_cast<double>(row.n));
    largest = std::move(result);
  }
  PrintPhaseBreakdown("largest n, p=" + std::to_string(p), largest);
  std::printf("\n(the paper's 2M-row input yields a cube ~113x the input"
              " rows; at scaled-down n the ratio is HIGHER — the big sparse"
              " views stay ~n rows while the input shrinks — and falls"
              " toward 113x as n grows: 166x at 100k, 138x at 500k)\n");
  return 0;
}
