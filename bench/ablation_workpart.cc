// Ablation: work partitioning (the introduction's other family, [3, 5, 15,
// 16, 18]) vs the paper's data partitioning (Procedure 1).
//
// Work partitioning needs every processor to read the whole raw data set
// (shared disk) and balances only as well as its size estimates; data
// partitioning reads 1/p of the data per processor and rebalances at the
// merge. The crossover the paper banks on: as p grows, work partitioning
// runs out of coarse-grained pipelines to hand out, while Procedure 1 keeps
// splitting rows.
#include "bench_util.h"

#include "common/env.h"
#include "core/workpart_baseline.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

namespace {

struct WorkPartResult {
  double sim_seconds = 0;
  double est_imbalance = 0;
  int pipelines = 0;
};

WorkPartResult RunWorkPart(const DatasetSpec& spec, int p) {
  const Schema schema = spec.MakeSchema();
  const Relation whole = GenerateDataset(spec);  // the "shared disk"
  Cluster cluster(p);
  std::vector<WorkPartitionStats> stats(static_cast<std::size_t>(p));
  cluster.Run([&](Comm& comm) {
    WorkPartitionStats st;
    WorkPartitionCube(comm, whole, schema, AggFn::kSum, &st);
    stats[static_cast<std::size_t>(comm.rank())] = st;
  });
  return {cluster.SimTimeSeconds(), stats[0].estimated_imbalance,
          stats[0].pipelines};
}

}  // namespace

int main() {
  const std::int64_t n = BenchRows(30000, 1000000);
  DatasetSpec spec = DatasetSpec::PaperDefault(n);
  spec.seed = 171;
  const auto selected = AllViews(8);

  std::printf("# Ablation: work partitioning (shared disk) vs Procedure 1 "
              "(shared nothing), n=%lld, d=8\n",
              static_cast<long long>(n));
  std::printf(
      "%-6s %14s %14s %14s %16s %16s\n", "p", "workpart_s", "procedure1_s",
      "shared_GB_rd", "shared_floor_s", "workpart_eff_s");
  const double raw_bytes =
      static_cast<double>(n) * (8 * sizeof(Key) + sizeof(Measure));
  // A shared array ~4x one local disk (a generous RAID assumption); the
  // whole raw file is re-read once per pipeline regardless of p, so this is
  // a floor on the makespan no processor count can push down.
  const DiskParams dparams;
  const double local_disk_bw = static_cast<double>(dparams.block_bytes) /
                               FastEthernetBeowulf().disk_block_s;
  const double shared_bw = 4.0 * local_disk_bw;
  for (double alpha : {0.0, 3.0}) {
    DatasetSpec run_spec = spec;
    run_spec.alphas.assign(8, 0.0);
    run_spec.alphas[0] = alpha;
    std::printf("-- leading-dimension skew alpha0 = %.0f --\n", alpha);
    for (int p : {2, 4, 8, 16}) {
      if (p > EnvInt("SNCUBE_MAXPROC", 16)) continue;
      const auto wp = RunWorkPart(run_spec, p);
      const auto ours = RunParallel(run_spec, p, selected);
      const double shared_read = raw_bytes * wp.pipelines;
      const double floor = shared_read / shared_bw;
      std::printf("%-6d %14.2f %14.2f %14.2f %16.2f %16.2f\n", p,
                  wp.sim_seconds, ours.sim_seconds,
                  shared_read / 1073741824.0, floor,
                  std::max(wp.sim_seconds, floor));
    }
  }
  std::printf(
      "\n(workpart_eff includes the shared-array bandwidth floor: every\n"
      " pipeline re-scans the whole raw file from ONE array, so the read\n"
      " volume never shrinks with p — the scalability wall, on top of the\n"
      " hardware cost, that motivates the paper's shared-nothing design.\n"
      " Procedure 1 reads 1/p of the data per PRIVATE disk instead.)\n");
  return 0;
}
