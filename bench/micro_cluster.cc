// Micro-benchmarks (google-benchmark) for the cluster runtime: h-relation
// throughput, collectives, and Adaptive–Sample–Sort. These measure HOST
// wall time of the runtime itself (threads + exchange board), not simulated
// time — they characterize the substrate the figure benches run on.
#include <benchmark/benchmark.h>

#include "core/sample_sort.h"
#include "data/generator.h"
#include "net/cluster.h"
#include "relation/sort.h"

namespace sncube {
namespace {

void BM_HRelation(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::size_t bytes = static_cast<std::size_t>(state.range(1));
  Cluster cluster(p);
  for (auto _ : state) {
    cluster.Run([&](Comm& comm) {
      std::vector<ByteBuffer> send(comm.size());
      for (auto& b : send) b.resize(bytes);
      benchmark::DoNotOptimize(comm.AllToAllv(std::move(send)));
    });
  }
  state.SetBytesProcessed(state.iterations() * static_cast<std::int64_t>(p) *
                          p * static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_HRelation)->Args({4, 4096})->Args({8, 4096})->Args({8, 65536});

void BM_Broadcast(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  Cluster cluster(p);
  for (auto _ : state) {
    cluster.Run([&](Comm& comm) {
      ByteBuffer msg;
      if (comm.rank() == 0) msg.resize(16384);
      benchmark::DoNotOptimize(comm.Broadcast(0, std::move(msg)));
    });
  }
}
BENCHMARK(BM_Broadcast)->Arg(4)->Arg(16);

void BM_AdaptiveSampleSort(benchmark::State& state) {
  const int p = static_cast<int>(state.range(0));
  const std::int64_t n = state.range(1);
  DatasetSpec spec;
  spec.rows = n;
  spec.cardinalities = {1024, 64};
  spec.seed = 7;
  std::vector<Relation> slices;
  for (int r = 0; r < p; ++r) slices.push_back(GenerateSlice(spec, p, r));
  const auto cols = IdentityOrder(2);
  Cluster cluster(p);
  for (auto _ : state) {
    cluster.Run([&](Comm& comm) {
      benchmark::DoNotOptimize(AdaptiveSampleSort(
          comm, Relation(slices[comm.rank()]), cols, 0.01));
    });
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdaptiveSampleSort)->Args({4, 100000})->Args({8, 100000});

}  // namespace
}  // namespace sncube

BENCHMARK_MAIN();
