// Figure 8: effect of data skew on (a) parallel wall-clock time and (b) the
// data volume communicated by Merge–Partitions.
//
// Paper setup: n = 1,000,000; d = 8; cards 256..6; p = 16; ZIPF alpha = 0,
// 1, 2, 3 in every dimension. Paper result: time generally DROPS with skew
// (data reduction shrinks every view); communicated volume SPIKES at
// alpha = 1 (reduction is uneven across processors, triggering heavy merge
// traffic) and collapses for alpha > 1 (views become tiny).
#include "bench_util.h"

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n = BenchRows(50000, 1000000);
  const int p = static_cast<int>(EnvInt("SNCUBE_MAXPROC", 16));
  const auto selected = AllViews(8);

  std::printf("# Figure 8: skew sweep, n=%lld, d=8, cards 256..6, p=%d\n",
              static_cast<long long>(n), p);
  std::printf("%-8s %16s %18s %12s %8s %8s %8s\n", "alpha", "sim_seconds",
              "merge_comm_MB", "cube_rows", "case1", "case2", "case3");
  RunResult spike;  // alpha = 1, the paper's merge-traffic spike
  for (double alpha : {0.0, 0.5, 1.0, 1.5, 2.0, 3.0}) {
    DatasetSpec spec = DatasetSpec::PaperDefault(n);
    spec.alphas.assign(8, alpha);
    spec.seed = 81;
    RunResult result = RunParallel(spec, p, selected);
    std::printf("%-8.1f %16.2f %18.2f %12llu %8d %8d %8d\n", alpha,
                result.sim_seconds, result.bytes_merge / 1048576.0,
                static_cast<unsigned long long>(result.cube_rows),
                result.merge.case1_views, result.merge.case2_views,
                result.merge.case3_views);
    if (alpha == 1.0) spike = std::move(result);
  }
  PrintPhaseBreakdown("alpha=1.0, p=" + std::to_string(p), spike);
  return 0;
}
