// Figure 5: full-cube parallel wall-clock time and relative speedup as a
// function of the number of processors, for two input sizes.
//
// Paper setup: n = 1,000,000 and 2,000,000 rows; d = 8; |Di| = 256, 128,
// 64, 32, 16, 8, 6, 6; alpha = 0; k = 100%. Paper result: near-linear
// speedup for the larger input; the smaller input flattens earlier because
// there is too little local computation to amortize communication.
//
// Also emits BENCH_fig05.json — every simulated cost in it is a pure
// function of (scale, sweep, seed), so a committed copy serves as the
// regression baseline for tools/bench_compare.py.
#include "bench_util.h"

#include <fstream>

#include "common/env.h"
#include "lattice/lattice.h"

using namespace sncube;
using namespace sncube::bench;

int main() {
  const std::int64_t n_small = BenchRows(50000, 1000000);
  const std::int64_t n_large = BenchRows(100000, 2000000);
  const auto ps = ProcessorSweep();
  const auto selected = AllViews(8);

  std::vector<std::vector<double>> times(2);
  std::vector<double> t1(2);
  const std::int64_t sizes[2] = {n_small, n_large};
  RunResult widest;  // largest input at the most processors
  for (int s = 0; s < 2; ++s) {
    DatasetSpec spec = DatasetSpec::PaperDefault(sizes[s]);
    spec.seed = 51;
    t1[s] = RunSequentialSeconds(spec, selected);
    for (int p : ps) {
      RunResult r = RunParallel(spec, p, selected);
      times[s].push_back(r.sim_seconds);
      widest = std::move(r);
    }
  }

  char title[256];
  std::snprintf(title, sizeof(title),
                "# Figure 5: full cube, d=8, cards 256..6, alpha=0, k=100%% "
                "(simulated seconds; T_seq: n1=%.1f, n2=%.1f)",
                t1[0], t1[1]);
  PrintTimePanel(title,
                 {"n=" + std::to_string(sizes[0]),
                  "n=" + std::to_string(sizes[1])},
                 ps, times);
  PrintSpeedupPanel({"n=" + std::to_string(sizes[0]),
                     "n=" + std::to_string(sizes[1])},
                    ps, t1, times);
  PrintPhaseBreakdown("n=" + std::to_string(sizes[1]) +
                          ", p=" + std::to_string(ps.back()),
                      widest);

  // Simulated seconds only (no wall clock anywhere): deterministic for a
  // given (SNCUBE_SCALE, SNCUBE_MAXPROC), so diffs against the committed
  // bench/baselines/BENCH_fig05.json are pure regressions.
  std::ofstream os("BENCH_fig05.json");
  os << "{\"bench\":\"fig05_speedup\",\"series\":[";
  for (int s = 0; s < 2; ++s) {
    if (s != 0) os << ',';
    char buf[160];
    std::snprintf(buf, sizeof buf, "{\"rows\":%lld,\"sim_seq_s\":%.6f,",
                  static_cast<long long>(sizes[s]), t1[s]);
    os << buf << "\"points\":[";
    for (std::size_t i = 0; i < ps.size(); ++i) {
      std::snprintf(buf, sizeof buf, "%s{\"p\":%d,\"sim_s\":%.6f}",
                    i == 0 ? "" : ",", ps[i], times[s][i]);
      os << buf;
    }
    os << "]}";
  }
  os << "]}\n";
  std::printf("\nwrote BENCH_fig05.json\n");
  return 0;
}
